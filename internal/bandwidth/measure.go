package bandwidth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/measure"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// MeasureOptions tunes the operational β measurement.
type MeasureOptions struct {
	// LoadFactors are the batch sizes to try, in messages per processor.
	// The measured rate grows with load until the network saturates; the
	// maximum over factors estimates the saturated delivery rate β.
	// Default: {2, 4, 8}.
	LoadFactors []int
	// Trials per load factor; rates are averaged. Default 2.
	Trials int
	// Strategy for the router. Default Greedy (shortest-path with random
	// tie-breaks), which achieves the Θ-level rates on all these machines.
	Strategy routing.Strategy
	// Shards is the intra-sim shard count for the routing simulator; 0 or 1
	// runs serial. Purely a throughput knob: the simulator's determinism
	// contract makes the measured values bit-identical at every shard
	// count, which is why cache layers exclude Shards from their keys.
	Shards int
	// Implicit makes sweeps build machines with generator-backed adjacency
	// (topology.BuildImplicit) when the family supports it — hypercube,
	// mesh, torus — so million-vertex sizes fit in memory. Like Shards this
	// is a representation knob, not a measurement parameter: implicit and
	// explicit runs are bit-identical, so cache layers exclude it too.
	Implicit bool
}

// Canonical returns the options with every default filled in, so two
// MeasureOptions values that describe the same measurement compare (and
// render) identically. Cache layers key on the canonical form: the zero
// value and an explicit {LoadFactors: {2,4,8}, Trials: 2} must hit the
// same cache entry.
func (o MeasureOptions) Canonical() MeasureOptions {
	if len(o.LoadFactors) == 0 {
		o.LoadFactors = []int{2, 4, 8}
	}
	if o.Trials < 1 {
		o.Trials = 2
	}
	return o
}

func (o MeasureOptions) withDefaults() MeasureOptions { return o.Canonical() }

// Measurement is one operational bandwidth estimate.
type Measurement struct {
	Machine *topology.Machine
	Dist    string  // distribution name
	Beta    float64 // saturated delivery rate, messages/tick
	// RateByLoad records the mean raw rate (messages/ticks) for each load
	// factor, showing the approach to saturation.
	RateByLoad map[int]float64
}

// MeasureBeta estimates β(M, π) operationally. The paper defines β as the
// limit of m/r(m); at finite m the raw ratio is dragged down by the batch's
// startup and drain tails (r(m) ≈ m/β + tail), so the estimator regresses
// delivery time against batch size over all trials and returns the inverse
// slope, which cancels the additive tail. With a single load factor the
// regression degenerates and the raw ratio is used.
//
// Determinism: one seed is drawn from rng to root a measure.SeedPlan, and
// every (load factor, trial) pair runs on its own stream keyed by its
// values. The result is therefore invariant under reordering of
// opts.LoadFactors, and trials of one load factor do not perturb another's.
func MeasureBeta(m *topology.Machine, dist traffic.Distribution, opts MeasureOptions, rng *rand.Rand) Measurement {
	opts = opts.withDefaults()
	return MeasureBetaOn(routing.NewEngine(m, opts.Strategy), dist, opts, rng)
}

// MeasureBetaOn is MeasureBeta on a prebuilt (typically cached) engine: the
// engine's machine and distance fields are reused across calls and the
// engine is never mutated — the shard count comes from opts, not e.Shards —
// so one engine can serve concurrent measurements. The rng draw order is
// exactly MeasureBeta's, which makes warm (cached-engine) results
// byte-identical to cold ones.
func MeasureBetaOn(eng *routing.Engine, dist traffic.Distribution, opts MeasureOptions, rng *rand.Rand) Measurement {
	m := eng.M
	if dist.N() != m.N() {
		panic(fmt.Sprintf("bandwidth: distribution over %d endpoints on machine of %d", dist.N(), m.N()))
	}
	// A disconnected machine (a degraded clone, typically) makes some pairs
	// undeliverable, which would stall the batch router forever; restrict
	// the traffic to same-component pairs. Connected machines pass through
	// untouched, keeping their historical rng sequences.
	dist = deliverableDist(m, dist)
	opts = opts.withDefaults()
	plan := measure.NewSeedPlan(rng.Int63())
	out := Measurement{Machine: m, Dist: dist.Name(), RateByLoad: make(map[int]float64)}
	type point struct{ x, y float64 } // batch size, ticks — one per trial
	var pts []point
	maxLF, maxRaw := 0, 0.0
	for _, lf := range opts.LoadFactors {
		batchSize := lf * m.N()
		var msgs, ticks float64
		for t := 0; t < opts.Trials; t++ {
			trng := plan.RNG(uint64(lf), uint64(t))
			batch := traffic.Batch(dist, batchSize, trng)
			st := eng.RouteSharded(batch, trng, opts.Shards)
			msgs += float64(st.Messages)
			ticks += float64(st.Ticks)
			pts = append(pts, point{x: float64(st.Messages), y: float64(st.Ticks)})
		}
		out.RateByLoad[lf] = msgs / ticks
		if lf > maxLF {
			maxLF, maxRaw = lf, msgs/ticks
		}
	}
	// Fall back to the raw rate at the largest load factor (not the last in
	// iteration order, which would reintroduce order dependence).
	out.Beta = maxRaw
	// Sort the regression points so the floating-point sums are independent
	// of the load-factor ordering too.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].x != pts[j].x {
			return pts[i].x < pts[j].x
		}
		return pts[i].y < pts[j].y
	})
	xs := make([]float64, len(pts))
	ys := make([]float64, len(pts))
	for i, p := range pts {
		xs[i] = p.x
		ys[i] = p.y
	}
	if slope, ok := regressionSlope(xs, ys); ok && slope > 0 {
		beta := 1 / slope
		// The raw ratio m/r(m) underestimates β (the tail only adds time),
		// so β must be at least the best raw rate; and a slope estimate
		// far above it is regression noise, not signal. Clamp to a sane
		// band around the raw observations.
		rawMax := 0.0
		for _, r := range out.RateByLoad {
			if r > rawMax {
				rawMax = r
			}
		}
		if beta < rawMax {
			beta = rawMax
		}
		if beta > 2.5*rawMax {
			beta = 2.5 * rawMax
		}
		out.Beta = beta
	}
	return out
}

// regressionSlope fits y = a + b*x by least squares and returns b. ok is
// false when the x values do not vary (single load factor).
func regressionSlope(xs, ys []float64) (float64, bool) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den <= 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// MeasureSymmetricBeta measures β(M) under the symmetric distribution —
// the paper's headline quantity.
func MeasureSymmetricBeta(m *topology.Machine, opts MeasureOptions, rng *rand.Rand) Measurement {
	return MeasureBeta(m, traffic.NewSymmetric(m.N()), opts, rng)
}

// SweepPoint is one machine size in a growth sweep.
type SweepPoint struct {
	N    int
	Beta float64
}

// SweepBeta measures β across machine sizes of one family, for exponent
// fitting against the Table 4 formulas. dim is passed to topology.Build.
// Each size runs on its own RNG stream derived from the plan by (family,
// size index), the exact streams SweepBetaParallel uses, so the two sweeps
// are bit-identical on the same plan.
func SweepBeta(f topology.Family, dim int, sizes []int, opts MeasureOptions, plan measure.SeedPlan) []SweepPoint {
	out := make([]SweepPoint, 0, len(sizes))
	for i, size := range sizes {
		out = append(out, sweepPoint(f, dim, size, i, opts, plan))
	}
	return out
}

// sweepPoint measures one size of a sweep on its plan-derived stream. Both
// SweepBeta and SweepBetaParallel funnel through it, which is what makes
// them bit-identical.
func sweepPoint(f topology.Family, dim, size, index int, opts MeasureOptions, plan measure.SeedPlan) SweepPoint {
	rng := plan.RNG(uint64(f), uint64(index))
	var m *topology.Machine
	if opts.Implicit && topology.ImplicitSupported(f) {
		// Build consumes no rng draws for these families, so the implicit
		// sweep sees the exact streams the explicit one does.
		var err error
		m, err = topology.BuildImplicit(f, dim, size)
		if err != nil {
			panic(fmt.Sprintf("bandwidth: %v", err))
		}
	} else {
		m = topology.Build(f, dim, size, rng)
	}
	meas := MeasureSymmetricBeta(m, opts, rng)
	return SweepPoint{N: m.N(), Beta: meas.Beta}
}

// MeasureLambda reports the machine's λ ingredients: the exact or
// double-sweep diameter and the (sampled) average distance. λ(M) is
// proportional to both on every machine in Table 4.
func MeasureLambda(m *topology.Machine, rng *rand.Rand) (diameter int, avgDist float64) {
	if m.Graph == nil {
		panic(fmt.Sprintf("bandwidth: MeasureLambda needs a materialized graph; %s is implicit (use Materialize first)", m.Name))
	}
	var err error
	if m.Graph.N() <= 1024 {
		diameter, err = m.Graph.Diameter()
	} else {
		diameter, err = m.Graph.EstimateDiameter(4, rng)
	}
	if err != nil {
		panic(fmt.Sprintf("bandwidth: %s: %v", m.Name, err))
	}
	samples := 64
	if m.Graph.N() < samples {
		samples = m.Graph.N()
	}
	avgDist, err = m.Graph.SampleAverageDistance(samples, rng)
	if err != nil {
		panic(fmt.Sprintf("bandwidth: %s: %v", m.Name, err))
	}
	return diameter, avgDist
}

// FitGrowth fits measured values v(n) to the model
//
//	lg v = a*lg n + b*lg lg n + c
//
// by least squares, returning the polynomial exponent a, the polylog
// exponent b, the constant c, and the RMS residual in lg-space. This is how
// measured β sweeps are compared against Table 4's Θ-forms: a should match
// the n-exponent and b the lg-exponent within noise.
func FitGrowth(points []SweepPoint) (a, b, c, rmse float64) {
	if len(points) < 3 {
		panic(fmt.Sprintf("bandwidth: FitGrowth needs >= 3 points, got %d", len(points)))
	}
	// Normal equations for X = [lg n, lg lg n, 1], y = lg v.
	var m [3][4]float64
	for _, p := range points {
		if p.N < 4 || p.Beta <= 0 {
			panic(fmt.Sprintf("bandwidth: FitGrowth needs n >= 4 and beta > 0, got %+v", p))
		}
		x0 := math.Log2(float64(p.N))
		x1 := math.Log2(x0)
		y := math.Log2(p.Beta)
		row := [3]float64{x0, x1, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += row[i] * row[j]
			}
			m[i][3] += row[i] * y
		}
	}
	// lg n and lg lg n are nearly collinear over realistic size ranges, so
	// the full 3-parameter fit is unstable: it happily trades a wild power
	// exponent against a huge polylog one for a microscopic residual gain.
	// Fit the pure power law first and accept the polylog term only when
	// (a) the power law misfits meaningfully (rmse > 0.05 in lg-space),
	// (b) the 3-parameter fit
	// halves the residual, and (c) the fitted polylog exponent is in the
	// physically sensible range |b| <= 2.
	a2, c2 := fitLogLog(points)
	r2 := residual(points, a2, 0, c2)
	sol, ok := solve3(m)
	if ok && r2 > 0.05 {
		r3 := residual(points, sol[0], sol[1], sol[2])
		if r3 < 0.5*r2 && math.Abs(sol[1]) <= 2 {
			return sol[0], sol[1], sol[2], r3
		}
	}
	return a2, 0, c2, r2
}

func residual(points []SweepPoint, a, b, c float64) float64 {
	var ss float64
	for _, p := range points {
		x0 := math.Log2(float64(p.N))
		x1 := math.Log2(x0)
		y := math.Log2(p.Beta)
		d := y - (a*x0 + b*x1 + c)
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(points)))
}

func fitLogLog(points []SweepPoint) (a, c float64) {
	var sx, sy, sxx, sxy float64
	for _, p := range points {
		x := math.Log2(float64(p.N))
		y := math.Log2(p.Beta)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(points))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	a = (n*sxy - sx*sy) / den
	c = (sy - a*sx) / n
	return a, c
}

// solve3 solves the 3x3 augmented system by Gaussian elimination with
// partial pivoting.
func solve3(m [3][4]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		// Pivot.
		best := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[best][col]) {
				best = r
			}
		}
		m[col], m[best] = m[best], m[col]
		if math.Abs(m[col][col]) < 1e-9 {
			return [3]float64{}, false
		}
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for j := col; j < 4; j++ {
				m[r][j] -= f * m[col][j]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = m[i][3] / m[i][i]
	}
	return out, true
}
