package bandwidth

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/measure"
	"repro/internal/multigraph"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Degradation measurement: how much operational bandwidth a machine keeps
// when wires fail mid-run. The paper's β is defined on an intact machine;
// the curves produced here measure the same delivery-rate quantity before
// and after a fault event on one continuous run, which is what the
// robustness comparisons (butterfly vs multibutterfly) plot.

// connectedPairs wraps a traffic distribution so it only ever samples
// source/destination pairs that lie in the same connected component of the
// machine's graph. On a disconnected machine the raw distribution produces
// undeliverable pairs, which stall the batch router forever; filtering them
// out makes β measurable on the reachable traffic.
type connectedPairs struct {
	inner traffic.Distribution
	comp  []int // per-vertex component label
}

func (c *connectedPairs) Name() string { return c.inner.Name() + "/connected" }
func (c *connectedPairs) N() int       { return c.inner.N() }

func (c *connectedPairs) Sample(rng *rand.Rand) traffic.Message {
	// Rejection sampling preserves the inner distribution conditioned on
	// deliverability. The attempt cap only trips when essentially no mass
	// lands on same-component pairs, which deserves a loud failure.
	for i := 0; i < 1<<20; i++ {
		m := c.inner.Sample(rng)
		if c.comp[m.Src] == c.comp[m.Dst] {
			return m
		}
	}
	panic(fmt.Sprintf("bandwidth: distribution %s has no deliverable pairs on this disconnected machine", c.inner.Name()))
}

func (c *connectedPairs) Graph() *multigraph.Multigraph { return c.inner.Graph() }

// deliverableDist returns dist unchanged when every processor of m lies in
// one connected component, and a component-filtered wrapper otherwise.
// Connected machines therefore keep the exact rng draw sequence (and so the
// exact measured values) they had before disconnected machines were
// supported.
func deliverableDist(m *topology.Machine, dist traffic.Distribution) traffic.Distribution {
	if m.Graph == nil {
		// Implicit machines are connected by construction; returning early
		// keeps their rng draw sequence identical to their explicit twins'.
		return dist
	}
	comp := make([]int, m.Graph.N())
	for i := range comp {
		comp[i] = -1
	}
	for label, vs := range m.Graph.Components() {
		for _, v := range vs {
			comp[v] = label
		}
	}
	connected := true
	for v := 1; v < m.N(); v++ {
		if comp[v] != comp[0] {
			connected = false
			break
		}
	}
	if connected {
		return dist
	}
	// At least one component must hold two processors, or no message is
	// ever deliverable.
	count := make(map[int]int)
	ok := false
	for v := 0; v < m.N(); v++ {
		count[comp[v]]++
		if count[comp[v]] >= 2 {
			ok = true
			break
		}
	}
	if !ok {
		panic(fmt.Sprintf("bandwidth: %s has no component with two processors; nothing is measurable", m.Name))
	}
	return &connectedPairs{inner: dist, comp: comp}
}

// FaultPoint is one sample of a degradation curve: the delivery rate
// sustained before and after a mid-run wire-fault event that kills the
// given fraction of live wires.
type FaultPoint struct {
	Frac         float64 // fraction of live wires failed at the event
	Rate         float64 // injection rate driven (messages/tick)
	BetaIntact   float64 // delivered/tick over the pre-fault window
	BetaDegraded float64 // delivered/tick over the post-fault window
	Injected     int
	Delivered    int
	Dropped      int
	Retried      int
}

// Retention is the fraction of pre-fault bandwidth the machine kept (1 when
// the pre-fault window delivered nothing).
func (p FaultPoint) Retention() float64 {
	if p.BetaIntact <= 0 {
		return 1
	}
	r := p.BetaDegraded / p.BetaIntact
	if r > 1 {
		r = 1
	}
	return r
}

// MeasureBetaUnderFaults produces a degradation curve for m under symmetric
// traffic: for each fault fraction, one continuous open-loop run is driven
// near the intact machine's saturation rate, a wire-fault event fires a
// third of the way in, and the delivery rate is measured over a pre-fault
// window and a post-fault window (the middle third after the event is
// discarded as re-convergence transient). Stranded packets retry with the
// default budget/backoff/TTL and count as dropped when they give up.
//
// Determinism: each fraction runs on its own plan stream keyed by the
// fraction's bit pattern, so the curve is invariant under reordering of
// fracs and each point is independent of the others.
func MeasureBetaUnderFaults(m *topology.Machine, fracs []float64, ticks int, plan measure.SeedPlan) []FaultPoint {
	return MeasureBetaUnderFaultsSharded(m, fracs, ticks, 1, plan)
}

// MeasureBetaUnderFaultsSharded is MeasureBetaUnderFaults on a sharded
// simulator (the liveness mask shards with it: dead processors drop their
// queues shard-locally and the conservation invariant holds globally). The
// curve is bit-identical at every shard count.
func MeasureBetaUnderFaultsSharded(m *topology.Machine, fracs []float64, ticks, shards int, plan measure.SeedPlan) []FaultPoint {
	if ticks < 30 {
		panic(fmt.Sprintf("bandwidth: %d ticks cannot hold pre-fault, transient, and post-fault windows; use >= 30", ticks))
	}
	out := make([]FaultPoint, 0, len(fracs))
	for _, frac := range fracs {
		out = append(out, faultPoint(m, frac, ticks, shards, plan))
	}
	return out
}

// faultPoint measures one fraction of a degradation curve on its own
// plan-derived stream.
func faultPoint(m *topology.Machine, frac float64, ticks, shards int, plan measure.SeedPlan) FaultPoint {
	rng := plan.RNG(math.Float64bits(frac))
	dist := traffic.NewSymmetric(m.N())

	// Find the intact machine's saturation rate, then drive the fault run
	// just below it so the pre-fault window measures a stable β.
	probe := routing.NewEngine(m, routing.Greedy)
	probe.Shards = shards
	sat := probe.SaturationRate(dist, 2*float64(m.Graph.E()), 200, 8, rng)
	rate := 0.9 * sat
	if rate <= 0 {
		panic(fmt.Sprintf("bandwidth: %s saturates at rate 0", m.Name))
	}

	failTick := ticks / 3
	fplan := topology.FaultPlan{{Kind: topology.EdgeFaults, Tick: failTick, Frac: frac}}
	sched := fplan.Materialize(m, rng)

	// A fresh engine for the fault run: an engine with faults enabled
	// belongs to its sim.
	eng := routing.NewEngine(m, routing.Greedy)
	eng.Shards = shards
	s := eng.NewSim(rng)
	defer s.Close()
	s.SetFaults(sched, routing.FaultOptions{})

	warmup := failTick / 3
	postStart := failTick + (ticks-failTick)/3
	var acc float64
	preDelivered, preTicks := 0, 0
	postDelivered, postTicks := 0, 0
	for t := 0; t < ticks; t++ {
		acc += rate
		k := int(acc)
		acc -= float64(k)
		if k > 0 {
			s.InjectSampled(dist, k)
		}
		d := s.Step()
		switch {
		case t >= warmup && t < failTick:
			preDelivered += d
			preTicks++
		case t >= postStart:
			postDelivered += d
			postTicks++
		}
	}
	p := FaultPoint{
		Frac:      frac,
		Rate:      rate,
		Injected:  s.Injected(),
		Delivered: s.Delivered(),
		Dropped:   s.Dropped(),
		Retried:   s.Retried(),
	}
	if preTicks > 0 {
		p.BetaIntact = float64(preDelivered) / float64(preTicks)
	}
	if postTicks > 0 {
		p.BetaDegraded = float64(postDelivered) / float64(postTicks)
	}
	return p
}
