package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/multigraph"
)

// The paper's K_{r,s} classes: a graph is in K_{r,s} iff it has r vertices,
// Θ(r²s) simple edges, and no vertex pair carries more than s edges. The
// witness traffic graphs γ and ξ in Lemmas 9 and 11 are drawn from these
// classes; the functions here build canonical members and check membership
// with an explicit density constant.

// CompleteKrs returns the canonical K_{r,s} member: the complete graph on
// r vertices with every pair at multiplicity s. It has exactly
// s*r*(r-1)/2 edges.
func CompleteKrs(r int, s int64) *multigraph.Multigraph {
	if r < 2 {
		panic(fmt.Sprintf("traffic: K_{r,s} needs r >= 2, got %d", r))
	}
	if s < 1 {
		panic(fmt.Sprintf("traffic: K_{r,s} needs s >= 1, got %d", s))
	}
	g := multigraph.New(r)
	for u := 0; u < r; u++ {
		for v := u + 1; v < r; v++ {
			g.AddEdge(u, v, s)
		}
	}
	return g
}

// KrsMembership reports whether g qualifies as a member of K_{r,s} with
// density constant at least minDensity: g must have r = g.N() vertices,
// at least minDensity * r² * s simple edges, and no pair multiplicity
// exceeding s. The paper's Θ(r²s) hides a constant; minDensity makes it
// explicit (the canonical member has density ~1/2).
func KrsMembership(g *multigraph.Multigraph, s int64, minDensity float64) error {
	if s < 1 {
		return fmt.Errorf("traffic: K_{r,s} needs s >= 1, got %d", s)
	}
	r := g.N()
	if r < 2 {
		return fmt.Errorf("traffic: K_{r,s} needs r >= 2, got %d", r)
	}
	// Density is measured against the r(r-1)s edges of the canonical
	// member, so CompleteKrs has density exactly 1/2.
	need := minDensity * float64(r) * float64(r-1) * float64(s)
	if float64(g.E()) < need {
		return fmt.Errorf("traffic: only %d edges, need >= %.0f for density %.3f in K_{%d,%d}",
			g.E(), need, minDensity, r, s)
	}
	for _, e := range g.Edges() {
		if e.Mult > s {
			return fmt.Errorf("traffic: pair (%d,%d) has multiplicity %d > s=%d", e.U, e.V, e.Mult, s)
		}
	}
	return nil
}

// FromGraph wraps an arbitrary traffic multigraph as a Distribution:
// messages sample pairs with probability proportional to edge multiplicity,
// choosing direction uniformly.
type FromGraph struct {
	name  string
	g     *multigraph.Multigraph
	edges []multigraph.Edge
	cum   []int64
	total int64
}

// NewFromGraph returns a Distribution over g's vertex set driven by g's
// edge weights. g must have at least one edge.
func NewFromGraph(name string, g *multigraph.Multigraph) *FromGraph {
	edges := g.Edges()
	if len(edges) == 0 {
		panic("traffic: FromGraph needs at least one edge")
	}
	cum := make([]int64, len(edges))
	var total int64
	for i, e := range edges {
		total += e.Mult
		cum[i] = total
	}
	return &FromGraph{name: name, g: g, edges: edges, cum: cum, total: total}
}

func (f *FromGraph) Name() string { return f.name }
func (f *FromGraph) N() int       { return f.g.N() }

// Graph returns the backing multigraph (not a copy).
func (f *FromGraph) Graph() *multigraph.Multigraph { return f.g }

func (f *FromGraph) Sample(rng *rand.Rand) Message {
	target := rng.Int63n(f.total)
	// Binary search the cumulative weights.
	lo, hi := 0, len(f.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if f.cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e := f.edges[lo]
	if rng.Intn(2) == 0 {
		return Message{Src: e.U, Dst: e.V}
	}
	return Message{Src: e.V, Dst: e.U}
}
