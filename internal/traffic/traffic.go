// Package traffic models the message traffic distributions of the paper:
// the symmetric (all-pairs) distribution that defines bandwidth β, the
// quasi-symmetric distributions that define bottleneck-freeness, the
// K_{r,s} graph classes the proofs draw witnesses from, and the auxiliary
// permutation/hot-spot patterns used in experiments.
//
// A traffic distribution over n endpoints assigns relative frequencies to
// ordered (source, destination) pairs. Its traffic multigraph (the paper's
// T_π) has a vertex per endpoint and integral edge weights proportional to
// the pair frequencies.
package traffic

import (
	"fmt"
	"math/rand"

	"repro/internal/multigraph"
)

// Message is a single (source, destination) request.
type Message struct {
	Src, Dst int
}

// Distribution is a traffic distribution over endpoints 0..N()-1.
type Distribution interface {
	// Name identifies the distribution in reports.
	Name() string
	// N is the number of endpoints.
	N() int
	// Sample draws one message.
	Sample(rng *rand.Rand) Message
	// Graph returns the traffic multigraph: integral edge weights
	// proportional to pair frequencies. May be expensive for large n.
	Graph() *multigraph.Multigraph
}

// Batch draws m messages from d.
func Batch(d Distribution, m int, rng *rand.Rand) []Message {
	out := make([]Message, m)
	for i := range out {
		out[i] = d.Sample(rng)
	}
	return out
}

// Symmetric is the all-pairs distribution: every ordered pair of distinct
// endpoints is equally likely. This is the distribution that defines the
// paper's bandwidth β(M).
type Symmetric struct {
	n int
}

// NewSymmetric returns the symmetric distribution on n >= 2 endpoints.
func NewSymmetric(n int) *Symmetric {
	if n < 2 {
		panic(fmt.Sprintf("traffic: symmetric distribution needs n >= 2, got %d", n))
	}
	return &Symmetric{n: n}
}

func (s *Symmetric) Name() string { return fmt.Sprintf("symmetric[%d]", s.n) }
func (s *Symmetric) N() int       { return s.n }

func (s *Symmetric) Sample(rng *rand.Rand) Message {
	src := rng.Intn(s.n)
	dst := rng.Intn(s.n - 1)
	if dst >= src {
		dst++
	}
	return Message{Src: src, Dst: dst}
}

// Graph returns K_n with unit multiplicities.
func (s *Symmetric) Graph() *multigraph.Multigraph {
	g := multigraph.New(s.n)
	for u := 0; u < s.n; u++ {
		for v := u + 1; v < s.n; v++ {
			g.AddSimpleEdge(u, v)
		}
	}
	return g
}

// QuasiSymmetric is a distribution in which Ω(n²) of the possible ordered
// pairs are equally likely and the rest are disallowed — the paper's
// Definition used for bottleneck-freeness.
type QuasiSymmetric struct {
	n     int
	pairs []Message
}

// NewQuasiSymmetric returns the distribution with the given allowed pairs.
// Pairs must be distinct-endpoint; duplicates raise the pair's frequency.
func NewQuasiSymmetric(n int, pairs []Message) *QuasiSymmetric {
	if n < 2 {
		panic(fmt.Sprintf("traffic: quasi-symmetric needs n >= 2, got %d", n))
	}
	if len(pairs) == 0 {
		panic("traffic: quasi-symmetric needs at least one pair")
	}
	for _, p := range pairs {
		if p.Src == p.Dst || p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			panic(fmt.Sprintf("traffic: invalid pair %+v for n=%d", p, n))
		}
	}
	cp := make([]Message, len(pairs))
	copy(cp, pairs)
	return &QuasiSymmetric{n: n, pairs: cp}
}

// RandomQuasiSymmetric draws a quasi-symmetric distribution on a random
// subset of m of the n endpoints, allowing each ordered pair within the
// subset independently with probability density (so ~density*m² pairs).
// It retries until at least one pair is allowed.
func RandomQuasiSymmetric(n, m int, density float64, rng *rand.Rand) *QuasiSymmetric {
	if m < 2 || m > n {
		panic(fmt.Sprintf("traffic: subset size %d out of range [2,%d]", m, n))
	}
	if density <= 0 || density > 1 {
		panic(fmt.Sprintf("traffic: density %v out of (0,1]", density))
	}
	subset := rng.Perm(n)[:m]
	for {
		var pairs []Message
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j && rng.Float64() < density {
					pairs = append(pairs, Message{Src: subset[i], Dst: subset[j]})
				}
			}
		}
		if len(pairs) > 0 {
			return &QuasiSymmetric{n: n, pairs: pairs}
		}
	}
}

func (q *QuasiSymmetric) Name() string {
	return fmt.Sprintf("quasi-symmetric[%d pairs on %d]", len(q.pairs), q.n)
}
func (q *QuasiSymmetric) N() int { return q.n }

// Pairs returns the allowed pairs (shared slice; treat as read-only).
func (q *QuasiSymmetric) Pairs() []Message { return q.pairs }

func (q *QuasiSymmetric) Sample(rng *rand.Rand) Message {
	return q.pairs[rng.Intn(len(q.pairs))]
}

func (q *QuasiSymmetric) Graph() *multigraph.Multigraph {
	g := multigraph.New(q.n)
	for _, p := range q.pairs {
		g.AddEdge(p.Src, p.Dst, 1)
	}
	return g
}

// Permutation sends every endpoint's messages to a fixed partner.
type Permutation struct {
	n    int
	perm []int
}

// NewPermutation returns the distribution where endpoint i always sends to
// perm[i]. perm must be a fixed-point-free permutation of 0..n-1.
func NewPermutation(perm []int) *Permutation {
	n := len(perm)
	if n < 2 {
		panic("traffic: permutation needs n >= 2")
	}
	seen := make([]bool, n)
	for i, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("traffic: invalid permutation at %d", i))
		}
		if p == i {
			panic(fmt.Sprintf("traffic: permutation has fixed point %d", i))
		}
		seen[p] = true
	}
	cp := make([]int, n)
	copy(cp, perm)
	return &Permutation{n: n, perm: cp}
}

// RandomPermutation returns a random fixed-point-free permutation
// distribution on n endpoints.
func RandomPermutation(n int, rng *rand.Rand) *Permutation {
	for {
		p := rng.Perm(n)
		ok := true
		for i, v := range p {
			if v == i {
				ok = false
				break
			}
		}
		if ok {
			return NewPermutation(p)
		}
	}
}

func (p *Permutation) Name() string { return fmt.Sprintf("permutation[%d]", p.n) }
func (p *Permutation) N() int       { return p.n }

func (p *Permutation) Sample(rng *rand.Rand) Message {
	src := rng.Intn(p.n)
	return Message{Src: src, Dst: p.perm[src]}
}

func (p *Permutation) Graph() *multigraph.Multigraph {
	g := multigraph.New(p.n)
	for i, v := range p.perm {
		g.AddEdge(i, v, 1)
	}
	return g
}

// HotSpot mixes uniform traffic with a fraction directed at one endpoint.
type HotSpot struct {
	n    int
	hot  int
	frac float64
}

// NewHotSpot returns the distribution where each message goes to endpoint
// hot with probability frac and to a uniform random endpoint otherwise.
func NewHotSpot(n, hot int, frac float64) *HotSpot {
	if n < 2 || hot < 0 || hot >= n {
		panic(fmt.Sprintf("traffic: bad hot spot %d for n=%d", hot, n))
	}
	if frac < 0 || frac > 1 {
		panic(fmt.Sprintf("traffic: bad fraction %v", frac))
	}
	return &HotSpot{n: n, hot: hot, frac: frac}
}

func (h *HotSpot) Name() string { return fmt.Sprintf("hotspot[%d@%.2f]", h.hot, h.frac) }
func (h *HotSpot) N() int       { return h.n }

func (h *HotSpot) Sample(rng *rand.Rand) Message {
	for {
		src := rng.Intn(h.n)
		dst := h.hot
		if rng.Float64() >= h.frac {
			dst = rng.Intn(h.n)
		}
		if src != dst {
			return Message{Src: src, Dst: dst}
		}
	}
}

// Graph approximates the hot-spot frequencies with integral weights:
// weight 1 for uniform pairs plus round(frac*n) extra on pairs into hot.
func (h *HotSpot) Graph() *multigraph.Multigraph {
	g := multigraph.New(h.n)
	boost := int64(h.frac*float64(h.n) + 0.5)
	for u := 0; u < h.n; u++ {
		for v := u + 1; v < h.n; v++ {
			w := int64(1)
			if v == h.hot || u == h.hot {
				w += boost
			}
			g.AddEdge(u, v, w)
		}
	}
	return g
}
