package traffic

import "fmt"

// Classic structured permutations used as adversarial routing workloads in
// the fixed-connection-network literature. All require n to be a power of
// two (they are defined on bit strings); endpoints that would map to
// themselves are cycled one position to keep the distribution
// fixed-point-free, which perturbs only O(√n) of the pairs.

func orderOf(n int) (int, error) {
	if n < 4 || n&(n-1) != 0 {
		return 0, fmt.Errorf("traffic: structured permutations need a power-of-two n >= 4, got %d", n)
	}
	d := 0
	for 1<<d < n {
		d++
	}
	return d, nil
}

// fixupFixedPoints replaces fixed points of perm by cycling them amongst
// each other (a single fixed point swaps with its successor index).
func fixupFixedPoints(perm []int) {
	var fixed []int
	for i, v := range perm {
		if v == i {
			fixed = append(fixed, i)
		}
	}
	switch len(fixed) {
	case 0:
	case 1:
		i := fixed[0]
		j := (i + 1) % len(perm)
		perm[i], perm[j] = perm[j], perm[i]
	default:
		for k := range fixed {
			perm[fixed[k]] = fixed[(k+1)%len(fixed)]
		}
	}
}

// BitReversal returns the permutation that reverses each endpoint's bit
// string — the classic worst case for greedy routing on butterflies and
// meshes.
func BitReversal(n int) (*Permutation, error) {
	d, err := orderOf(n)
	if err != nil {
		return nil, err
	}
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < d; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (d - 1 - b)
			}
		}
		perm[i] = r
	}
	fixupFixedPoints(perm)
	return NewPermutation(perm), nil
}

// Transpose returns the matrix-transpose permutation: the high and low
// halves of each endpoint's bit string are swapped. d must be even for an
// exact transpose; odd d swaps the floor(d/2) outer bits around the middle
// bit.
func Transpose(n int) (*Permutation, error) {
	d, err := orderOf(n)
	if err != nil {
		return nil, err
	}
	half := d / 2
	lowMask := (1 << half) - 1
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		low := i & lowMask
		high := i >> (d - half) // top `half` bits
		mid := (i >> half) & ((1 << (d - 2*half)) - 1)
		perm[i] = low<<(d-half) | mid<<half | high
	}
	fixupFixedPoints(perm)
	return NewPermutation(perm), nil
}

// Complement returns the permutation sending every endpoint to its bitwise
// complement — maximal-distance traffic on hypercubic machines.
func Complement(n int) (*Permutation, error) {
	if _, err := orderOf(n); err != nil {
		return nil, err
	}
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		perm[i] = (n - 1) ^ i
	}
	// i != ~i always, so no fixed points.
	return NewPermutation(perm), nil
}

// PerfectShuffle returns the cyclic-rotate-left permutation on bit strings
// (the shuffle of a shuffle-exchange network, as traffic).
func PerfectShuffle(n int) (*Permutation, error) {
	d, err := orderOf(n)
	if err != nil {
		return nil, err
	}
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		perm[i] = ((i << 1) | (i >> (d - 1))) & (n - 1)
	}
	fixupFixedPoints(perm)
	return NewPermutation(perm), nil
}
