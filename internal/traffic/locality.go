package traffic

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/multigraph"
)

// Locality is a distance-decaying traffic distribution on a concrete
// machine graph: the probability of a (src, dst) pair falls off as
// decay^distance(src,dst). The Efficient Emulation Theorem is specifically
// about the *symmetric* distribution — local traffic defeats bandwidth
// lower bounds because most messages never touch the network's thin cuts,
// and the locality experiments quantify exactly that.
type Locality struct {
	n     int
	decay float64
	// cum[src] is the cumulative weight table over destinations.
	cum   [][]float64
	total []float64
}

// NewLocality builds the distance-decaying distribution over the graph's
// vertices (all of them — callers restrict to processor prefixes by
// passing a processor-only graph). decay must be in (0, 1); smaller means
// more local.
func NewLocality(g *multigraph.Multigraph, decay float64) *Locality {
	n := g.N()
	if n < 2 {
		panic(fmt.Sprintf("traffic: locality needs n >= 2, got %d", n))
	}
	if decay <= 0 || decay >= 1 {
		panic(fmt.Sprintf("traffic: decay %v out of (0,1)", decay))
	}
	l := &Locality{n: n, decay: decay, cum: make([][]float64, n), total: make([]float64, n)}
	for src := 0; src < n; src++ {
		dist := g.BFS(src)
		cum := make([]float64, n)
		acc := 0.0
		for dst := 0; dst < n; dst++ {
			if dst != src && dist[dst] > 0 {
				acc += math.Pow(decay, float64(dist[dst]))
			}
			cum[dst] = acc
		}
		if acc == 0 {
			panic(fmt.Sprintf("traffic: vertex %d has no reachable destinations", src))
		}
		l.cum[src] = cum
		l.total[src] = acc
	}
	return l
}

// Name implements Distribution.
func (l *Locality) Name() string { return fmt.Sprintf("locality[%d,decay=%.2f]", l.n, l.decay) }

// N implements Distribution.
func (l *Locality) N() int { return l.n }

// Sample implements Distribution.
func (l *Locality) Sample(rng *rand.Rand) Message {
	src := rng.Intn(l.n)
	target := rng.Float64() * l.total[src]
	cum := l.cum[src]
	lo, hi := 0, l.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == src { // numerical edge: never return a self-message
		lo = (lo + 1) % l.n
	}
	return Message{Src: src, Dst: lo}
}

// Graph implements Distribution: integral weights approximate the decay
// profile (scaled so the nearest-neighbour weight is ~16).
func (l *Locality) Graph() *multigraph.Multigraph {
	g := multigraph.New(l.n)
	for src := 0; src < l.n; src++ {
		prev := 0.0
		for dst := 0; dst < l.n; dst++ {
			w := l.cum[src][dst] - prev
			prev = l.cum[src][dst]
			if dst <= src || w == 0 {
				continue // count each unordered pair once, from the lower side
			}
			scaled := int64(w / l.decay * 16)
			if scaled > 0 {
				g.AddEdge(src, dst, scaled)
			}
		}
	}
	return g
}
