package traffic

import (
	"math/rand"
	"testing"
)

func checkPermDist(t *testing.T, p *Permutation, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		m := p.Sample(rng)
		if m.Src == m.Dst {
			t.Fatal("fixed point sampled")
		}
		if m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
			t.Fatalf("out of range: %+v", m)
		}
	}
}

func TestBitReversal(t *testing.T) {
	p, err := BitReversal(16)
	if err != nil {
		t.Fatal(err)
	}
	checkPermDist(t, p, 16)
	// 0001 <-> 1000 must be paired (1 -> 8).
	g := p.Graph()
	if !g.HasEdge(1, 8) {
		t.Fatal("bit reversal missing 1<->8")
	}
}

func TestTransposeEvenOrder(t *testing.T) {
	p, err := Transpose(16) // d=4: (hi2, lo2) swap
	if err != nil {
		t.Fatal(err)
	}
	checkPermDist(t, p, 16)
	// 0b0110 (hi=01, lo=10) -> 0b1001.
	g := p.Graph()
	if !g.HasEdge(0b0110, 0b1001) {
		t.Fatal("transpose missing 6<->9")
	}
}

func TestTransposeOddOrder(t *testing.T) {
	p, err := Transpose(32) // d=5
	if err != nil {
		t.Fatal(err)
	}
	checkPermDist(t, p, 32)
}

func TestComplement(t *testing.T) {
	p, err := Complement(16)
	if err != nil {
		t.Fatal(err)
	}
	checkPermDist(t, p, 16)
	g := p.Graph()
	if !g.HasEdge(0, 15) || !g.HasEdge(5, 10) {
		t.Fatal("complement pairs missing")
	}
}

func TestPerfectShuffle(t *testing.T) {
	p, err := PerfectShuffle(16)
	if err != nil {
		t.Fatal(err)
	}
	checkPermDist(t, p, 16)
	// 0b0011 -> 0b0110.
	g := p.Graph()
	if !g.HasEdge(3, 6) {
		t.Fatal("shuffle missing 3->6")
	}
}

func TestStructuredPermBadSize(t *testing.T) {
	for _, n := range []int{0, 3, 12, 100} {
		if _, err := BitReversal(n); err == nil {
			t.Errorf("BitReversal(%d) accepted", n)
		}
		if _, err := Transpose(n); err == nil {
			t.Errorf("Transpose(%d) accepted", n)
		}
		if _, err := Complement(n); err == nil {
			t.Errorf("Complement(%d) accepted", n)
		}
		if _, err := PerfectShuffle(n); err == nil {
			t.Errorf("PerfectShuffle(%d) accepted", n)
		}
	}
}

func TestFixupFixedPointsSingle(t *testing.T) {
	perm := []int{0, 2, 1} // one fixed point at 0
	fixupFixedPoints(perm)
	for i, v := range perm {
		if v == i {
			t.Fatalf("fixed point survives: %v", perm)
		}
	}
}
