package traffic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/multigraph"
)

func TestSymmetricSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewSymmetric(10)
	counts := make(map[Message]int)
	for i := 0; i < 9000; i++ {
		m := s.Sample(rng)
		if m.Src == m.Dst {
			t.Fatal("self-message sampled")
		}
		if m.Src < 0 || m.Src >= 10 || m.Dst < 0 || m.Dst >= 10 {
			t.Fatalf("out of range message %+v", m)
		}
		counts[m]++
	}
	// All 90 ordered pairs should appear, roughly uniformly (mean 100).
	if len(counts) != 90 {
		t.Fatalf("saw %d distinct pairs, want 90", len(counts))
	}
	for m, c := range counts {
		if c < 40 || c > 200 {
			t.Fatalf("pair %+v count %d far from uniform mean 100", m, c)
		}
	}
}

func TestSymmetricGraph(t *testing.T) {
	s := NewSymmetric(6)
	g := s.Graph()
	if g.E() != 15 {
		t.Fatalf("E = %d, want 15 (K6)", g.E())
	}
	if s.N() != 6 || s.Name() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestSymmetricTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSymmetric(1)
}

func TestQuasiSymmetric(t *testing.T) {
	pairs := []Message{{0, 1}, {2, 3}, {3, 2}}
	q := NewQuasiSymmetric(4, pairs)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		m := q.Sample(rng)
		found := false
		for _, p := range pairs {
			if p == m {
				found = true
			}
		}
		if !found {
			t.Fatalf("sampled disallowed pair %+v", m)
		}
	}
	g := q.Graph()
	if g.Multiplicity(2, 3) != 2 { // both directions collapse onto one edge
		t.Fatalf("mult(2,3) = %d, want 2", g.Multiplicity(2, 3))
	}
}

func TestQuasiSymmetricValidation(t *testing.T) {
	for _, bad := range [][]Message{
		{{0, 0}},
		{{0, 9}},
		{},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("pairs %v did not panic", bad)
				}
			}()
			NewQuasiSymmetric(4, bad)
		}()
	}
}

func TestRandomQuasiSymmetricDensity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := RandomQuasiSymmetric(100, 50, 0.5, rng)
	// Expect about 0.5 * 50 * 49 = 1225 pairs.
	if got := len(q.Pairs()); got < 900 || got > 1600 {
		t.Fatalf("pair count %d far from expectation 1225", got)
	}
	// All pairs inside a 50-vertex subset.
	verts := make(map[int]bool)
	for _, p := range q.Pairs() {
		verts[p.Src] = true
		verts[p.Dst] = true
	}
	if len(verts) > 50 {
		t.Fatalf("pairs span %d vertices, want <= 50", len(verts))
	}
}

func TestPermutation(t *testing.T) {
	p := NewPermutation([]int{1, 2, 0})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		m := p.Sample(rng)
		if m.Dst != (m.Src+1)%3 {
			t.Fatalf("bad sample %+v", m)
		}
	}
	if p.Graph().E() != 3 {
		t.Fatalf("graph E = %d, want 3", p.Graph().E())
	}
}

func TestPermutationValidation(t *testing.T) {
	for _, bad := range [][]int{
		{0, 1},    // fixed points
		{1, 1, 0}, // not a permutation
		{2, 0},    // out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("perm %v did not panic", bad)
				}
			}()
			NewPermutation(bad)
		}()
	}
}

func TestRandomPermutationFixedPointFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := RandomPermutation(8, rng)
		for i := 0; i < 200; i++ {
			if m := p.Sample(rng); m.Src == m.Dst {
				t.Fatal("fixed point sampled")
			}
		}
	}
}

func TestHotSpot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	h := NewHotSpot(20, 7, 0.5)
	hot := 0
	total := 4000
	for i := 0; i < total; i++ {
		m := h.Sample(rng)
		if m.Src == m.Dst {
			t.Fatal("self message")
		}
		if m.Dst == 7 {
			hot++
		}
	}
	// Expect just over half the messages into the hot spot.
	if hot < total/3 || hot > 3*total/4 {
		t.Fatalf("hot fraction %d/%d far from ~0.52", hot, total)
	}
	if h.Graph().E() == 0 {
		t.Fatal("empty hot-spot graph")
	}
}

func TestBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := Batch(NewSymmetric(5), 17, rng)
	if len(b) != 17 {
		t.Fatalf("batch size %d, want 17", len(b))
	}
}

func TestCompleteKrs(t *testing.T) {
	g := CompleteKrs(5, 3)
	if g.N() != 5 {
		t.Fatalf("N = %d", g.N())
	}
	if g.E() != 30 { // 10 pairs * 3
		t.Fatalf("E = %d, want 30", g.E())
	}
	if err := KrsMembership(g, 3, 0.5); err != nil {
		t.Fatalf("canonical member rejected: %v", err)
	}
}

func TestKrsMembershipRejections(t *testing.T) {
	// Too sparse.
	sparse := multigraph.New(10)
	sparse.AddSimpleEdge(0, 1)
	if err := KrsMembership(sparse, 1, 0.4); err == nil {
		t.Fatal("sparse graph accepted")
	}
	// Over-multiplied pair.
	fat := CompleteKrs(4, 2)
	fat.AddEdge(0, 1, 5)
	if err := KrsMembership(fat, 2, 0.4); err == nil {
		t.Fatal("over-multiplied pair accepted")
	}
	if err := KrsMembership(multigraph.New(1), 1, 0.1); err == nil {
		t.Fatal("single vertex accepted")
	}
	if err := KrsMembership(CompleteKrs(3, 1), 0, 0.1); err == nil {
		t.Fatal("s=0 accepted")
	}
}

func TestFromGraphSamplesProportionally(t *testing.T) {
	g := multigraph.New(3)
	g.AddEdge(0, 1, 9)
	g.AddEdge(1, 2, 1)
	d := NewFromGraph("test", g)
	rng := rand.New(rand.NewSource(8))
	heavy := 0
	for i := 0; i < 5000; i++ {
		m := d.Sample(rng)
		pair := [2]int{m.Src, m.Dst}
		if pair == [2]int{0, 1} || pair == [2]int{1, 0} {
			heavy++
		}
	}
	// Expect ~90% on the heavy edge.
	if heavy < 4200 || heavy > 4800 {
		t.Fatalf("heavy edge sampled %d/5000, want ~4500", heavy)
	}
	if d.N() != 3 || d.Name() != "test" {
		t.Fatal("metadata wrong")
	}
}

func TestFromGraphEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewFromGraph("empty", multigraph.New(3))
}

// Property: every sampled message from any distribution is a valid
// non-self pair within range.
func TestPropertySamplesValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		dists := []Distribution{
			NewSymmetric(n),
			RandomPermutation(n, rng),
			NewHotSpot(n, rng.Intn(n), rng.Float64()),
			RandomQuasiSymmetric(n, 2+rng.Intn(n-1), 0.5, rng),
		}
		for _, d := range dists {
			for i := 0; i < 50; i++ {
				m := d.Sample(rng)
				if m.Src == m.Dst || m.Src < 0 || m.Src >= n || m.Dst < 0 || m.Dst >= n {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the symmetric traffic graph of n endpoints is a member of
// K_{n,1} at density ~1/2 — the class the paper's lemmas use.
func TestPropertySymmetricIsKn1(t *testing.T) {
	for n := 2; n <= 40; n += 7 {
		g := NewSymmetric(n).Graph()
		if err := KrsMembership(g, 1, 0.4); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func localityRing(n int) *multigraph.Multigraph {
	g := multigraph.New(n)
	for i := 0; i < n; i++ {
		g.AddSimpleEdge(i, (i+1)%n)
	}
	return g
}

func TestLocalitySamplesPreferNear(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	g := localityRing(32)
	l := NewLocality(g, 0.3)
	near, far := 0, 0
	for i := 0; i < 4000; i++ {
		m := l.Sample(rng)
		if m.Src == m.Dst {
			t.Fatal("self message")
		}
		d := g.BFS(m.Src)[m.Dst]
		if d <= 2 {
			near++
		}
		if d >= 8 {
			far++
		}
	}
	if near < 10*far {
		t.Fatalf("near %d vs far %d: locality not biased enough", near, far)
	}
}

func TestLocalityGraphWeightsDecay(t *testing.T) {
	g := localityRing(16)
	l := NewLocality(g, 0.5)
	tg := l.Graph()
	w1 := tg.Multiplicity(0, 1) // distance 1
	w3 := tg.Multiplicity(0, 3) // distance 3
	if w1 <= w3 {
		t.Fatalf("weight at distance 1 (%d) should exceed distance 3 (%d)", w1, w3)
	}
	if l.N() != 16 || l.Name() == "" {
		t.Fatal("metadata wrong")
	}
}

func TestLocalityValidation(t *testing.T) {
	for _, decay := range []float64{0, 1, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("decay %v accepted", decay)
				}
			}()
			NewLocality(localityRing(8), decay)
		}()
	}
}
