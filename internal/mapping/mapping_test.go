package mapping

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/emulation"
	"repro/internal/topology"
)

func loads(assign []int, hostN int) []int {
	out := make([]int, hostN)
	for _, p := range assign {
		out[p]++
	}
	return out
}

func TestRecursiveBisectionBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest := topology.Mesh(2, 8) // 64
	host := topology.Ring(8)
	assign := RecursiveBisection(guest, host, Options{}, rng)
	if len(assign) != 64 {
		t.Fatalf("assignment covers %d", len(assign))
	}
	for p, l := range loads(assign, 8) {
		if l < 6 || l > 10 {
			t.Fatalf("host %d has load %d, want ~8", p, l)
		}
	}
}

func TestRecursiveBisectionSingleHost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	guest := topology.Ring(12)
	host := topology.LinearArray(1)
	assign := RecursiveBisection(guest, host, Options{}, rng)
	for _, p := range assign {
		if p != 0 {
			t.Fatal("everything must map to the only host")
		}
	}
}

func TestRecursiveBisectionPreservesLocality(t *testing.T) {
	// Mapping a mesh onto a mesh: the cut-based map should produce far
	// fewer cross-host guest edges than a random balanced map.
	rng := rand.New(rand.NewSource(3))
	guest := topology.Mesh(2, 8)
	host := topology.Mesh(2, 4)
	assign := RecursiveBisection(guest, host, Options{Restarts: 4}, rng)
	random := emulation.RandomMap(guest, host, rng)
	cross := func(a []int) int {
		c := 0
		for _, e := range guest.Graph.Edges() {
			if a[e.U] != a[e.V] {
				c++
			}
		}
		return c
	}
	rb, rd := cross(assign), cross(random)
	if rb >= rd {
		t.Fatalf("recursive bisection cross edges %d >= random %d", rb, rd)
	}
	// A good map keeps cross edges within a small factor of the ideal
	// (ideal for 2x2 blocks is 48 of 112 edges).
	if rb > 90 {
		t.Fatalf("cross edges %d too high", rb)
	}
}

func TestRecursiveBisectionBeatsRandomOnIrregularPair(t *testing.T) {
	// The pairs with no coordinate structure are where the mapper earns
	// its keep: de Bruijn guest onto a tree host.
	rng := rand.New(rand.NewSource(4))
	guest := topology.DeBruijn(6)
	host := topology.Tree(3)
	assign := RecursiveBisection(guest, host, Options{Restarts: 4}, rng)
	res := emulation.Direct(guest, host, 2, assign, rng)
	random := emulation.Direct(guest, host, 2, emulation.RandomMap(guest, host, rng), rng)
	if res.RouteTicks > random.RouteTicks {
		t.Fatalf("mapped %d route ticks > random %d", res.RouteTicks, random.RouteTicks)
	}
}

func TestRejectsSwitchGuests(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RecursiveBisection(topology.GlobalBus(8), topology.Ring(4), Options{}, rng)
}

// Property: the assignment is always complete, in range, and near balanced.
func TestPropertyAssignmentsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		guest := topology.Ring(16 + rng.Intn(32))
		host := topology.Ring(3 + rng.Intn(5))
		assign := RecursiveBisection(guest, host, Options{Restarts: 2}, rng)
		if len(assign) != guest.N() {
			return false
		}
		counts := loads(assign, host.N())
		min, max := guest.N(), 0
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		// Sizes are forced proportionally at every split; allow slack 2x.
		return max <= 2*(guest.N()/host.N()+1) && min >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
