// Package mapping solves instances of the mapping problem the paper cites
// (Berman & Snyder): assigning guest processors to host processors so that
// communicating guests land near each other. The emulation experiments use
// it as the locality-preserving contraction for machine pairs that have no
// coordinate structure to exploit.
//
// The algorithm is classic recursive coordinated bisection: split the
// guest with a small balanced cut, split the host likewise, map the halves
// to each other, and recurse until the host side is a single processor.
// Guest cuts use the multigraph's local-search bisection; host cuts reuse
// the same heuristic, so the expensive spectral machinery stays optional.
package mapping

import (
	"fmt"
	"math/rand"

	"repro/internal/multigraph"
	"repro/internal/topology"
)

// Options tunes the recursion.
type Options struct {
	// Restarts per bisection call (local-search restarts). Default 3.
	Restarts int
}

func (o Options) withDefaults() Options {
	if o.Restarts < 1 {
		o.Restarts = 3
	}
	return o
}

// RecursiveBisection maps guest processors onto host processors by
// coordinated recursive bisection and returns the assignment (guest
// processor -> host processor). Both machines must be pure processor
// machines on their graphs' vertex sets; the guest must be at least as
// large as the host.
func RecursiveBisection(guest, host *topology.Machine, opts Options, rng *rand.Rand) []int {
	if guest.N() != guest.Graph.N() {
		panic(fmt.Sprintf("mapping: guest %s has switch vertices", guest.Name))
	}
	if host.N() < 1 {
		panic("mapping: empty host")
	}
	opts = opts.withDefaults()
	assign := make([]int, guest.N())
	guestAll := make([]int, guest.N())
	for i := range guestAll {
		guestAll[i] = i
	}
	hostAll := make([]int, host.N())
	for i := range hostAll {
		hostAll[i] = i
	}
	recurse(guest.Graph, host.Graph, guestAll, hostAll, assign, opts, rng)
	return assign
}

// recurse maps the guest vertices in gPart onto the host vertices in hPart.
func recurse(g, h *multigraph.Multigraph, gPart, hPart []int, assign []int, opts Options, rng *rand.Rand) {
	if len(hPart) == 1 {
		for _, v := range gPart {
			assign[v] = hPart[0]
		}
		return
	}
	if len(gPart) == 0 {
		return
	}
	// Split the host into two halves with a small cut, then split the
	// guest proportionally, and pair the sides so that (heuristically)
	// the bigger guest half gets the bigger host half.
	hA, hB := splitPart(h, hPart, len(hPart)/2, opts, rng)
	wantA := len(gPart) * len(hA) / len(hPart)
	gA, gB := splitPart(g, gPart, wantA, opts, rng)
	recurse(g, h, gA, hA, assign, opts, rng)
	recurse(g, h, gB, hB, assign, opts, rng)
}

// splitPart partitions `part` into sizes (k, len-k) minimizing the induced
// cut with a random-restart local search over the induced subgraph.
func splitPart(g *multigraph.Multigraph, part []int, k int, opts Options, rng *rand.Rand) ([]int, []int) {
	n := len(part)
	if k <= 0 {
		return nil, append([]int(nil), part...)
	}
	if k >= n {
		return append([]int(nil), part...), nil
	}
	// Build the induced subgraph once.
	index := make(map[int]int, n)
	for i, v := range part {
		index[v] = i
	}
	sub := multigraph.New(n)
	for i, v := range part {
		g.VisitNeighbors(v, func(u int, mult int64) {
			if j, ok := index[u]; ok && j > i {
				sub.AddEdge(i, j, mult)
			}
		})
	}
	bestSide := make([]bool, n)
	bestCut := int64(-1)
	side := make([]bool, n)
	for r := 0; r < opts.Restarts; r++ {
		// Random size-k seed refined by greedy swaps.
		perm := rng.Perm(n)
		for i := range side {
			side[i] = false
		}
		for i := 0; i < k; i++ {
			side[perm[i]] = true
		}
		cut := refineFixedSize(sub, side, k)
		if bestCut < 0 || cut < bestCut {
			bestCut = cut
			copy(bestSide, side)
		}
	}
	var a, b []int
	for i, v := range part {
		if bestSide[i] {
			a = append(a, v)
		} else {
			b = append(b, v)
		}
	}
	return a, b
}

// refineFixedSize greedily swaps one vertex from each side while the cut
// improves, preserving the side sizes, and returns the final cut. The swap
// pair is chosen among the top-gain candidates of each side, keeping each
// iteration O(n).
func refineFixedSize(g *multigraph.Multigraph, side []bool, _ int) int64 {
	n := g.N()
	gain := make([]int64, n)
	recompute := func(u int) {
		var ext, in int64
		g.VisitNeighbors(u, func(v int, mult int64) {
			if side[v] != side[u] {
				ext += mult
			} else {
				in += mult
			}
		})
		gain[u] = ext - in
	}
	for u := 0; u < n; u++ {
		recompute(u)
	}
	cut := g.CutWeight(side)
	const cand = 6
	top := func(want bool) []int {
		out := make([]int, 0, cand)
		for u := 0; u < n; u++ {
			if side[u] != want {
				continue
			}
			pos := len(out)
			for pos > 0 && gain[out[pos-1]] < gain[u] {
				pos--
			}
			if pos < cand {
				if len(out) < cand {
					out = append(out, 0)
				}
				copy(out[pos+1:], out[pos:len(out)-1])
				out[pos] = u
			}
		}
		return out
	}
	for iter := 0; iter < 2*n; iter++ {
		bestU, bestV := -1, -1
		var bestDelta int64
		for _, u := range top(true) {
			for _, v := range top(false) {
				delta := gain[u] + gain[v] - 2*g.Multiplicity(u, v)
				if delta > bestDelta {
					bestDelta, bestU, bestV = delta, u, v
				}
			}
		}
		if bestU < 0 {
			break
		}
		side[bestU], side[bestV] = false, true
		cut -= bestDelta
		recompute(bestU)
		recompute(bestV)
		g.VisitNeighbors(bestU, func(v int, _ int64) { recompute(v) })
		g.VisitNeighbors(bestV, func(v int, _ int64) { recompute(v) })
	}
	return cut
}
