// Package plot renders minimal ASCII log-log charts for the command-line
// tools — enough to see Figure 1's crossover in a terminal without any
// plotting dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// LogLog renders the series on a width x height character grid with
// logarithmic axes. All points must be positive. Markers overwrite earlier
// series at collisions; the legend lists name and marker.
func LogLog(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 16 || height < 4 {
		return fmt.Errorf("plot: grid %dx%d too small", width, height)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			if s.X[i] <= 0 || s.Y[i] <= 0 {
				return fmt.Errorf("plot: series %q has non-positive point (%v, %v)", s.Name, s.X[i], s.Y[i])
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("plot: no points")
	}
	lx, hx := math.Log(minX), math.Log(maxX)
	ly, hy := math.Log(minY), math.Log(maxY)
	if hx == lx {
		hx = lx + 1
	}
	if hy == ly {
		hy = ly + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			col := int(float64(width-1) * (math.Log(s.X[i]) - lx) / (hx - lx))
			row := int(float64(height-1) * (math.Log(s.Y[i]) - ly) / (hy - ly))
			grid[height-1-row][col] = s.Marker
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%10.1f ┤\n", maxY); err != nil {
		return err
	}
	for _, row := range grid {
		if _, err := fmt.Fprintf(w, "%10s │%s\n", "", string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%10.1f ┤%s\n", minY, strings.Repeat("─", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%11s%-*.1f%10.1f\n", "", width-9, minX, maxX); err != nil {
		return err
	}
	for _, s := range series {
		if _, err := fmt.Fprintf(w, "  %c  %s\n", s.Marker, s.Name); err != nil {
			return err
		}
	}
	return nil
}
