package plot

import (
	"strings"
	"testing"
)

func TestLogLogRendersMarkers(t *testing.T) {
	var sb strings.Builder
	err := LogLog(&sb, "test plot", 40, 10,
		Series{Name: "load", Marker: '*', X: []float64{4, 16, 64, 256}, Y: []float64{256, 64, 16, 4}},
		Series{Name: "comm", Marker: 'o', X: []float64{4, 16, 64, 256}, Y: []float64{32, 16, 8, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"test plot", "*", "o", "load", "comm"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The load curve falls from top-left to bottom-right: the first grid
	// row (highest y) should contain a '*' near the left.
	lines := strings.Split(out, "\n")
	var gridLines []string
	for _, l := range lines {
		if strings.Contains(l, "│") {
			gridLines = append(gridLines, l)
		}
	}
	if len(gridLines) != 10 {
		t.Fatalf("grid has %d rows, want 10", len(gridLines))
	}
	if !strings.Contains(gridLines[0], "*") {
		t.Errorf("top row lacks the load marker:\n%s", out)
	}
}

func TestLogLogErrors(t *testing.T) {
	var sb strings.Builder
	if err := LogLog(&sb, "t", 5, 2); err == nil {
		t.Error("tiny grid accepted")
	}
	if err := LogLog(&sb, "t", 40, 10, Series{Name: "a", Marker: 'a', X: []float64{1}, Y: []float64{1, 2}}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := LogLog(&sb, "t", 40, 10, Series{Name: "a", Marker: 'a', X: []float64{0}, Y: []float64{1}}); err == nil {
		t.Error("non-positive point accepted")
	}
	if err := LogLog(&sb, "t", 40, 10); err == nil {
		t.Error("empty plot accepted")
	}
}

func TestLogLogDegenerateRange(t *testing.T) {
	var sb strings.Builder
	// Single point: ranges collapse; must not divide by zero.
	err := LogLog(&sb, "pt", 20, 5, Series{Name: "p", Marker: 'x', X: []float64{10}, Y: []float64{10}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x") {
		t.Error("marker missing")
	}
}
