package embed

import (
	"math/rand"
	"sort"

	"repro/internal/multigraph"
)

// This file estimates the paper's limiting G-congestion C(H, T): the
// minimum congestion over 1-to-1 embeddings of xT into H as x grows,
// normalized by x. In the limit, load may split fractionally across
// alternative paths, so the natural estimator is a fractional spread
// followed by local improvement, bracketed below by flux and cut bounds.

// FractionalCongestion estimates the normalized limiting congestion of
// embedding traffic T into host under the given vertex map: every traffic
// edge's weight is spread uniformly over `spread` random shortest paths,
// and the result is the maximum per-wire fractional load. Larger spread
// approaches the optimum from above on the machines considered.
func FractionalCongestion(host, traffic *multigraph.Multigraph, vertexMap []int, spread int, rng *rand.Rand) float64 {
	checkMap(host, traffic, vertexMap)
	if spread < 1 {
		spread = 1
	}
	loads := make(map[edgeKey]float64)
	for _, te := range traffic.Edges() {
		hu, hv := vertexMap[te.U], vertexMap[te.V]
		if hu == hv {
			continue
		}
		share := float64(te.Mult) / float64(spread)
		for s := 0; s < spread; s++ {
			p := host.RandomShortestPath(hu, hv, rng)
			for i := 0; i+1 < len(p); i++ {
				loads[keyOf(p[i], p[i+1])] += share
			}
		}
	}
	worst := 0.0
	for k, load := range loads {
		per := load / float64(host.Multiplicity(k.u, k.v))
		if per > worst {
			worst = per
		}
	}
	return worst
}

// FluxLowerBound returns the flux (distance-volume) lower bound on the
// congestion of any embedding of traffic into host under the map: total
// weighted distance divided by the number of host wires. Any routing must
// ship each unit of traffic over at least its shortest-path distance.
func FluxLowerBound(host, traffic *multigraph.Multigraph, vertexMap []int) float64 {
	checkMap(host, traffic, vertexMap)
	// Group traffic endpoints by host source to reuse BFS runs.
	need := make(map[int][]multigraph.Edge)
	for _, te := range traffic.Edges() {
		hu := vertexMap[te.U]
		need[hu] = append(need[hu], te)
	}
	var volume float64
	for hu, edges := range need {
		dist := host.BFS(hu)
		for _, te := range edges {
			hv := vertexMap[te.V]
			if hv == hu {
				continue
			}
			volume += float64(te.Mult) * float64(dist[hv])
		}
	}
	return volume / float64(host.E())
}

// CutLowerBound returns a cut-based lower bound on congestion: for the
// given host partition, all traffic between opposite sides must cross the
// cut wires. side is indexed by host vertex.
func CutLowerBound(host, traffic *multigraph.Multigraph, vertexMap []int, side []bool) float64 {
	checkMap(host, traffic, vertexMap)
	cut := host.CutWeight(side)
	if cut == 0 {
		return 0
	}
	var crossing int64
	for _, te := range traffic.Edges() {
		if side[vertexMap[te.U]] != side[vertexMap[te.V]] {
			crossing += te.Mult
		}
	}
	return float64(crossing) / float64(cut)
}

// EstimateGCongestion brackets C(host, traffic) under the identity-style
// vertex map: it returns a fractional-spread upper estimate and the best
// of the flux and (heuristic) bisection lower bounds. The truth lies in
// [lower, upper]; on the paper's machines the two are within small
// constant factors.
func EstimateGCongestion(host, traffic *multigraph.Multigraph, vertexMap []int, spread int, rng *rand.Rand) (lower, upper float64) {
	upper = FractionalCongestion(host, traffic, vertexMap, spread, rng)
	lower = FluxLowerBound(host, traffic, vertexMap)
	side := bisectionSide(host, rng)
	if cb := CutLowerBound(host, traffic, vertexMap, side); cb > lower {
		lower = cb
	}
	return lower, upper
}

// bisectionSide returns a balanced partition of host with a small cut,
// reusing the multigraph heuristics.
func bisectionSide(host *multigraph.Multigraph, rng *rand.Rand) []bool {
	// Use a BFS sweep from vertex 0 (cheap, good on structured machines),
	// falling back to random if the graph is tiny.
	n := host.N()
	side := make([]bool, n)
	if n < 2 {
		return side
	}
	dist := host.BFS(0)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	// Stable sort by distance so ties stay shuffled.
	sort.SliceStable(order, func(i, j int) bool { return dist[order[i]] < dist[order[j]] })
	for i := 0; i < n/2; i++ {
		side[order[i]] = true
	}
	return side
}
