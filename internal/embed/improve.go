package embed

import (
	"container/heap"
	"math/rand"
)

// Improve reroutes paths to reduce the maximum congestion: for `rounds`
// passes over the paths in random order, each path is removed and re-routed
// along a congestion-aware weighted shortest path (edge cost 1 + load²,
// which strongly penalizes hot wires while still preferring short routes).
// It returns the final congestion. The embedding is modified in place.
func (e *Embedding) Improve(rounds int, rng *rand.Rand) int64 {
	if rounds < 1 {
		rounds = 1
	}
	loads := e.edgeLoads()
	order := make([]int, len(e.Paths))
	for i := range order {
		order[i] = i
	}
	for round := 0; round < rounds; round++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, pi := range order {
			p := &e.Paths[pi]
			if len(p.Vertices) < 2 {
				continue
			}
			mult := p.GuestEdge.Mult
			// Remove this path's load.
			for i := 0; i+1 < len(p.Vertices); i++ {
				loads[keyOf(p.Vertices[i], p.Vertices[i+1])] -= mult
			}
			src := p.Vertices[0]
			dst := p.Vertices[len(p.Vertices)-1]
			newPath := e.weightedPath(src, dst, loads)
			if newPath != nil {
				p.Vertices = newPath
			}
			for i := 0; i+1 < len(p.Vertices); i++ {
				loads[keyOf(p.Vertices[i], p.Vertices[i+1])] += mult
			}
		}
	}
	return e.Congestion()
}

// weightedPath runs Dijkstra on the host with edge cost 1 + (load/mult)²,
// so the router avoids congested wires but still pays for length.
func (e *Embedding) weightedPath(src, dst int, loads map[edgeKey]int64) []int {
	const inf = float64(1 << 62)
	n := e.Host.N()
	dist := make([]float64, n)
	parent := make([]int, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = inf
		parent[i] = -1
	}
	dist[src] = 0
	pq := &floatHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(heapItem)
		u := item.v
		if done[u] {
			continue
		}
		done[u] = true
		if u == dst {
			break
		}
		// Sorted neighbour order keeps tie-breaking (and thus the whole
		// improvement pass) deterministic for a given seed.
		for _, v := range e.Host.Neighbors(u) {
			if done[v] {
				continue
			}
			mult := e.Host.Multiplicity(u, v)
			load := float64(loads[keyOf(u, v)]) / float64(mult)
			w := 1 + load*load
			if nd := dist[u] + w; nd < dist[v] {
				dist[v] = nd
				parent[v] = u
				heap.Push(pq, heapItem{v: v, d: nd})
			}
		}
	}
	if parent[dst] == -1 && src != dst {
		return nil
	}
	var rev []int
	for v := dst; v != src; v = parent[v] {
		rev = append(rev, v)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

type heapItem struct {
	v int
	d float64
}

type floatHeap []heapItem

func (h floatHeap) Len() int            { return len(h) }
func (h floatHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h floatHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *floatHeap) Push(x interface{}) { *h = append(*h, x.(heapItem)) }
func (h *floatHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
