package embed

import (
	"math/rand"
	"testing"
)

func TestOptimizeMapRecoversPathIdentity(t *testing.T) {
	// Embedding a path into a path: the optimal bijection is (a reflection
	// of) the identity with flux = n-1. Swap descent from a random start
	// should get close.
	rng := rand.New(rand.NewSource(1))
	host := path(12)
	guest := path(12)
	start := rng.Perm(12)
	m, flux := OptimizeMap(host, guest, start, 6000, rng)
	if flux < 11 {
		t.Fatalf("flux %v below optimum 11", flux)
	}
	if flux > 30 {
		t.Fatalf("flux %v far from optimum 11", flux)
	}
	// The result must still be a bijection.
	seen := make([]bool, 12)
	for _, v := range m {
		if seen[v] {
			t.Fatal("map is not a bijection")
		}
		seen[v] = true
	}
}

func TestOptimizeMapNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	host := grid(4, 4)
	guest := cycle(16)
	start := rng.Perm(16)
	// Flux of the starting map:
	var startFlux float64
	for _, e := range guest.Edges() {
		d := host.BFS(start[e.U])[start[e.V]]
		startFlux += float64(e.Mult) * float64(d)
	}
	_, flux := OptimizeMap(host, guest, start, 3000, rng)
	if flux > startFlux {
		t.Fatalf("optimization worsened flux: %v -> %v", startFlux, flux)
	}
}

func TestOptimizeMapSizeMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	OptimizeMap(path(4), path(3), []int{0, 1, 2}, 10, rng)
}

func TestBestGCongestionCycleIntoGrid(t *testing.T) {
	// A 16-cycle embeds into a 4x4 grid with congestion O(1) under a good
	// (boustrophedon) bijection; a random bijection gives much worse. The
	// search should land near the good end.
	rng := rand.New(rand.NewSource(4))
	host := grid(4, 4)
	guest := cycle(16)
	best := BestGCongestion(host, guest, 4, 4000, 3, rng)
	random := FractionalCongestion(host, guest, rng.Perm(16), 4, rng)
	if best > random {
		t.Fatalf("search (%v) worse than random map (%v)", best, random)
	}
	if best > 4 {
		t.Fatalf("cycle-into-grid congestion %v, want small constant", best)
	}
}
