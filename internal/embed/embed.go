// Package embed implements embeddings of multigraphs (traffic patterns or
// guest networks) into host graphs, and the congestion and dilation
// measures the paper's graph-theoretic bandwidth definition is built on:
//
//	β(H, T) = E(T) / C(H, T)
//
// where C(H, T) is the minimum congestion of a 1-to-1 embedding of the
// traffic multigraph T into H, in the limit of growing edge multiplicities.
// The limit lets paths split fractionally, so the estimator here spreads
// each traffic edge across many random shortest paths (FractionalLoad) and
// refines whole-path embeddings by congestion-aware rerouting (Improve).
package embed

import (
	"fmt"
	"math/rand"

	"repro/internal/multigraph"
)

// edgeKey identifies an undirected host edge by its ordered endpoints.
type edgeKey struct{ u, v int }

func keyOf(a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{u: a, v: b}
}

// Embedding is a concrete embedding of Guest into Host: a vertex map plus
// one routing path per distinct guest edge. A guest edge of multiplicity m
// contributes m units of load to every host edge its path crosses.
type Embedding struct {
	Host      *multigraph.Multigraph
	Guest     *multigraph.Multigraph
	VertexMap []int // guest vertex -> host vertex
	Paths     []Path
}

// Path routes one distinct guest edge through the host.
type Path struct {
	GuestEdge multigraph.Edge
	Vertices  []int // host vertices, from map(U) to map(V) inclusive
}

// IdentityMap returns the identity vertex map for n vertices.
func IdentityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

func checkMap(host, guest *multigraph.Multigraph, vertexMap []int) {
	if len(vertexMap) != guest.N() {
		panic(fmt.Sprintf("embed: vertex map has %d entries for guest of %d", len(vertexMap), guest.N()))
	}
	for gv, hv := range vertexMap {
		if hv < 0 || hv >= host.N() {
			panic(fmt.Sprintf("embed: guest vertex %d maps to invalid host vertex %d", gv, hv))
		}
	}
}

// ShortestPaths embeds guest into host along deterministic shortest paths
// under the given vertex map (1-to-1 or many-to-1). Guest edges whose
// endpoints map to the same host vertex get a trivial single-vertex path
// (they cost nothing on host wires).
func ShortestPaths(host, guest *multigraph.Multigraph, vertexMap []int) *Embedding {
	checkMap(host, guest, vertexMap)
	e := &Embedding{Host: host, Guest: guest, VertexMap: vertexMap}
	for _, ge := range guest.Edges() {
		hu, hv := vertexMap[ge.U], vertexMap[ge.V]
		var p []int
		if hu == hv {
			p = []int{hu}
		} else {
			p = host.ShortestPath(hu, hv)
			if p == nil {
				panic(fmt.Sprintf("embed: host vertices %d and %d disconnected", hu, hv))
			}
		}
		e.Paths = append(e.Paths, Path{GuestEdge: ge, Vertices: p})
	}
	return e
}

// RandomShortestPaths embeds guest into host along random shortest paths,
// spreading load across tie-breaking choices.
func RandomShortestPaths(host, guest *multigraph.Multigraph, vertexMap []int, rng *rand.Rand) *Embedding {
	checkMap(host, guest, vertexMap)
	e := &Embedding{Host: host, Guest: guest, VertexMap: vertexMap}
	for _, ge := range guest.Edges() {
		hu, hv := vertexMap[ge.U], vertexMap[ge.V]
		var p []int
		if hu == hv {
			p = []int{hu}
		} else {
			p = host.RandomShortestPath(hu, hv, rng)
			if p == nil {
				panic(fmt.Sprintf("embed: host vertices %d and %d disconnected", hu, hv))
			}
		}
		e.Paths = append(e.Paths, Path{GuestEdge: ge, Vertices: p})
	}
	return e
}

// edgeLoads returns per-host-edge load: the sum over paths crossing the
// edge of the guest edge multiplicity. Host edge capacity (multiplicity)
// is accounted for separately by callers.
func (e *Embedding) edgeLoads() map[edgeKey]int64 {
	loads := make(map[edgeKey]int64)
	for _, p := range e.Paths {
		for i := 0; i+1 < len(p.Vertices); i++ {
			loads[keyOf(p.Vertices[i], p.Vertices[i+1])] += p.GuestEdge.Mult
		}
	}
	return loads
}

// Congestion returns the maximum per-wire load: for each distinct host
// edge, the crossing load divided by the edge multiplicity (parallel host
// wires share load), rounded up. This is the paper's congestion c.
func (e *Embedding) Congestion() int64 {
	var worst int64
	for k, load := range e.edgeLoads() {
		mult := e.Host.Multiplicity(k.u, k.v)
		if mult == 0 {
			panic(fmt.Sprintf("embed: path crosses non-edge (%d,%d)", k.u, k.v))
		}
		per := (load + mult - 1) / mult
		if per > worst {
			worst = per
		}
	}
	return worst
}

// Dilation returns the maximum path length (edges), 0 for an embedding
// with only trivial paths.
func (e *Embedding) Dilation() int {
	worst := 0
	for _, p := range e.Paths {
		if l := len(p.Vertices) - 1; l > worst {
			worst = l
		}
	}
	return worst
}

// AverageDilation returns the multiplicity-weighted mean path length —
// the paper's average G-dilation measure.
func (e *Embedding) AverageDilation() float64 {
	var total, weight int64
	for _, p := range e.Paths {
		total += int64(len(p.Vertices)-1) * p.GuestEdge.Mult
		weight += p.GuestEdge.Mult
	}
	if weight == 0 {
		return 0
	}
	return float64(total) / float64(weight)
}

// VertexLoads returns, for every host vertex, the total load transiting or
// terminating at it (each path contributes its multiplicity to every vertex
// it visits). Machines with per-vertex forwarding caps (bus hubs, one-port
// hypercubes) are bound by this measure rather than edge congestion.
func (e *Embedding) VertexLoads() []int64 {
	loads := make([]int64, e.Host.N())
	for _, p := range e.Paths {
		for _, v := range p.Vertices {
			loads[v] += p.GuestEdge.Mult
		}
	}
	return loads
}

// MaxVertexLoad returns the maximum entry of VertexLoads.
func (e *Embedding) MaxVertexLoad() int64 {
	var worst int64
	for _, l := range e.VertexLoads() {
		if l > worst {
			worst = l
		}
	}
	return worst
}
