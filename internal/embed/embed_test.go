package embed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/multigraph"
	"repro/internal/traffic"
)

func path(n int) *multigraph.Multigraph {
	g := multigraph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddSimpleEdge(i, i+1)
	}
	return g
}

func cycle(n int) *multigraph.Multigraph {
	g := path(n)
	g.AddSimpleEdge(n-1, 0)
	return g
}

func grid(r, c int) *multigraph.Multigraph {
	g := multigraph.New(r * c)
	id := func(i, j int) int { return i*c + j }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if i+1 < r {
				g.AddSimpleEdge(id(i, j), id(i+1, j))
			}
			if j+1 < c {
				g.AddSimpleEdge(id(i, j), id(i, j+1))
			}
		}
	}
	return g
}

func TestIdentityMap(t *testing.T) {
	m := IdentityMap(4)
	for i, v := range m {
		if v != i {
			t.Fatalf("IdentityMap[%d] = %d", i, v)
		}
	}
}

func TestShortestPathsCycleIntoPath(t *testing.T) {
	// Embed the 6-cycle into the 6-path: the wrap edge must route the long
	// way, so congestion 2 (edge 0-1 carries the wrap path and edge 0-1),
	// dilation 5.
	host := path(6)
	guest := cycle(6)
	e := ShortestPaths(host, guest, IdentityMap(6))
	if got := e.Dilation(); got != 5 {
		t.Fatalf("dilation = %d, want 5", got)
	}
	if got := e.Congestion(); got != 2 {
		t.Fatalf("congestion = %d, want 2", got)
	}
}

func TestShortestPathsTrivial(t *testing.T) {
	// All guest vertices collapse to the same host vertex: no host load.
	host := path(3)
	guest := cycle(3)
	e := ShortestPaths(host, guest, []int{1, 1, 1})
	if e.Congestion() != 0 {
		t.Fatalf("congestion = %d, want 0", e.Congestion())
	}
	if e.Dilation() != 0 {
		t.Fatalf("dilation = %d, want 0", e.Dilation())
	}
}

func TestCongestionRespectsHostMultiplicity(t *testing.T) {
	// Host path with a doubled middle wire halves the per-wire congestion.
	host := multigraph.New(3)
	host.AddEdge(0, 1, 2)
	host.AddEdge(1, 2, 2)
	guest := multigraph.New(3)
	guest.AddEdge(0, 2, 4)
	e := ShortestPaths(host, guest, IdentityMap(3))
	if got := e.Congestion(); got != 2 { // 4 units over 2 parallel wires
		t.Fatalf("congestion = %d, want 2", got)
	}
}

func TestAverageDilation(t *testing.T) {
	host := path(4)
	guest := multigraph.New(4)
	guest.AddEdge(0, 3, 1) // length 3
	guest.AddEdge(0, 1, 3) // length 1, weight 3
	e := ShortestPaths(host, guest, IdentityMap(4))
	want := (3.0*1 + 1.0*3) / 4.0
	if got := e.AverageDilation(); got != want {
		t.Fatalf("avg dilation = %v, want %v", got, want)
	}
}

func TestVertexLoads(t *testing.T) {
	host := path(4)
	guest := multigraph.New(4)
	guest.AddEdge(0, 3, 2)
	e := ShortestPaths(host, guest, IdentityMap(4))
	loads := e.VertexLoads()
	for v, want := range []int64{2, 2, 2, 2} {
		if loads[v] != want {
			t.Fatalf("load[%d] = %d, want %d", v, loads[v], want)
		}
	}
	if e.MaxVertexLoad() != 2 {
		t.Fatalf("max vertex load = %d", e.MaxVertexLoad())
	}
}

func TestRandomShortestPathsValidAndShort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	host := grid(5, 5)
	guest := traffic.NewSymmetric(25).Graph()
	e := RandomShortestPaths(host, guest, IdentityMap(25), rng)
	for _, p := range e.Paths {
		want := host.BFS(p.Vertices[0])[p.Vertices[len(p.Vertices)-1]]
		if len(p.Vertices)-1 != want {
			t.Fatalf("path %v not shortest (want len %d)", p.Vertices, want)
		}
	}
}

func TestImproveNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	host := grid(4, 4)
	guest := traffic.NewSymmetric(16).Graph()
	e := ShortestPaths(host, guest, IdentityMap(16))
	before := e.Congestion()
	after := e.Improve(3, rng)
	if after > before {
		t.Fatalf("Improve worsened congestion: %d -> %d", before, after)
	}
	// Paths must stay valid.
	for _, p := range e.Paths {
		for i := 0; i+1 < len(p.Vertices); i++ {
			if !host.HasEdge(p.Vertices[i], p.Vertices[i+1]) {
				t.Fatalf("invalid path after Improve: %v", p.Vertices)
			}
		}
	}
}

func TestImproveSpreadsCycleLoad(t *testing.T) {
	// Heavy parallel demand between opposite corners of a cycle: the
	// deterministic embedding puts everything on one side; Improve should
	// split it across both.
	rng := rand.New(rand.NewSource(3))
	host := cycle(8)
	guest := multigraph.New(8)
	guest.AddEdge(0, 4, 8)
	e := ShortestPaths(host, guest, IdentityMap(8))
	if e.Congestion() != 8 {
		t.Fatalf("pre congestion = %d, want 8", e.Congestion())
	}
	// A single path cannot split its own load; but with two guest edges the
	// halves can diverge.
	guest2 := multigraph.New(8)
	guest2.AddEdge(0, 4, 4)
	guest2.AddEdge(4, 0, 4) // same pair; merged multiplicity 8, single path
	_ = guest2
	guest3 := multigraph.New(8)
	guest3.AddEdge(0, 4, 4)
	guest3.AddEdge(0, 3, 4)
	e3 := ShortestPaths(host, guest3, IdentityMap(8))
	improved := e3.Improve(4, rng)
	if improved > e3.Congestion() {
		t.Fatal("inconsistent return value")
	}
	if improved > 8 {
		t.Fatalf("congestion %d not reduced", improved)
	}
}

func TestFluxLowerBound(t *testing.T) {
	// Path host, all-pairs traffic on 4 vertices: total distance volume =
	// sum over pairs of distance = (3*1 + 2*2 + 1*3) = 10; wires = 3.
	host := path(4)
	tr := traffic.NewSymmetric(4).Graph()
	got := FluxLowerBound(host, tr, IdentityMap(4))
	want := 10.0 / 3.0
	if got != want {
		t.Fatalf("flux = %v, want %v", got, want)
	}
}

func TestCutLowerBound(t *testing.T) {
	host := path(4)
	tr := traffic.NewSymmetric(4).Graph()
	side := []bool{true, true, false, false}
	// 4 traffic pairs cross the single cut wire.
	got := CutLowerBound(host, tr, IdentityMap(4), side)
	if got != 4 {
		t.Fatalf("cut bound = %v, want 4", got)
	}
}

func TestCutLowerBoundZeroCut(t *testing.T) {
	host := path(2)
	tr := multigraph.New(2)
	tr.AddSimpleEdge(0, 1)
	// Degenerate all-one-side partition has no cut.
	if got := CutLowerBound(host, tr, IdentityMap(2), []bool{true, true}); got != 0 {
		t.Fatalf("cut bound = %v, want 0", got)
	}
}

func TestFractionalCongestionPathAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Path host: the middle wire must carry all 2*(n/2)² ordered... with
	// unordered K_n weights: (n/2)*(n/2) pairs cross the middle.
	host := path(8)
	tr := traffic.NewSymmetric(8).Graph()
	got := FractionalCongestion(host, tr, IdentityMap(8), 4, rng)
	if got != 16 { // 4*4 pairs cross wire 3-4, paths are unique on a path graph
		t.Fatalf("fractional congestion = %v, want 16", got)
	}
}

func TestEstimateGCongestionBrackets(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	host := grid(4, 4)
	tr := traffic.NewSymmetric(16).Graph()
	lower, upper := EstimateGCongestion(host, tr, IdentityMap(16), 8, rng)
	if lower <= 0 || upper <= 0 {
		t.Fatalf("bounds not positive: [%v, %v]", lower, upper)
	}
	if lower > upper {
		t.Fatalf("lower %v > upper %v", lower, upper)
	}
	// On a 4x4 grid with all-pairs traffic the bracket should be tight-ish.
	if upper > 8*lower {
		t.Fatalf("bracket too loose: [%v, %v]", lower, upper)
	}
}

func TestShortestPathsBadMapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ShortestPaths(path(3), cycle(3), []int{0, 1})
}

func TestCongestionCrossNonEdgePanics(t *testing.T) {
	host := path(3)
	e := &Embedding{Host: host, Guest: cycle(3), VertexMap: IdentityMap(3)}
	e.Paths = []Path{{GuestEdge: multigraph.Edge{U: 0, V: 2, Mult: 1}, Vertices: []int{0, 2}}}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for path over non-edge")
		}
	}()
	e.Congestion()
}

// Property: max congestion >= average congestion = flux bound, and
// Improve keeps paths valid while never worsening the maximum.
func TestPropertyCongestionAboveFlux(t *testing.T) {
	g := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		host := grid(4, 4)
		tr := multigraph.New(16)
		for i := 0; i < 20; i++ {
			u, v := rng.Intn(16), rng.Intn(16)
			if u != v {
				tr.AddEdge(u, v, int64(1+rng.Intn(3)))
			}
		}
		if tr.E() == 0 {
			return true
		}
		e := RandomShortestPaths(host, tr, IdentityMap(16), rng)
		flux := FluxLowerBound(host, tr, IdentityMap(16))
		if float64(e.Congestion()) < flux-1e-9 {
			return false
		}
		before := e.Congestion()
		if e.Improve(2, rng) > before {
			return false
		}
		return true
	}
	if err := quick.Check(g, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
