package embed

import (
	"math/rand"

	"repro/internal/multigraph"
)

// The paper's C(H, G) minimizes congestion over all 1-to-1 embeddings —
// including the choice of vertex bijection. OptimizeMap searches that
// bijection by simulated-annealing-flavoured swap descent: starting from a
// given map, it repeatedly swaps the images of two guest vertices and keeps
// the swap when it lowers (or occasionally, early on, ties) an inexpensive
// congestion surrogate — the total weighted path length (flux), whose
// minimum tracks the congestion minimum on the paper's machines.

// OptimizeMap improves a bijection guest->host by swap descent on the flux
// surrogate (sum over guest edges of multiplicity x host distance). swaps
// is the number of candidate swaps to try. It returns the improved map and
// its flux. The input map must be a bijection (host and guest the same
// size); the input slice is not modified.
func OptimizeMap(host, guest *multigraph.Multigraph, vertexMap []int, swaps int, rng *rand.Rand) ([]int, float64) {
	checkMap(host, guest, vertexMap)
	if host.N() != guest.N() {
		panic("embed: OptimizeMap needs |host| == |guest|")
	}
	n := guest.N()
	cur := make([]int, n)
	copy(cur, vertexMap)

	// Precompute all-pairs distances on the host (n BFS runs). Feasible for
	// the instance sizes the congestion estimators use (n <= ~2000).
	dist := make([][]int, n)
	for v := 0; v < n; v++ {
		dist[v] = host.BFS(v)
	}
	edges := guest.Edges()
	// vertexCost computes the flux contribution of guest vertex u under
	// the current map.
	adj := make([][]multigraph.Edge, n)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e)
		adj[e.V] = append(adj[e.V], e)
	}
	vertexCost := func(u int) float64 {
		var c float64
		for _, e := range adj[u] {
			c += float64(e.Mult) * float64(dist[cur[e.U]][cur[e.V]])
		}
		return c
	}
	total := 0.0
	for _, e := range edges {
		total += float64(e.Mult) * float64(dist[cur[e.U]][cur[e.V]])
	}
	for s := 0; s < swaps; s++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a == b {
			continue
		}
		before := vertexCost(a) + vertexCost(b)
		// Edges between a and b are double counted identically before and
		// after, so the delta is still exact.
		cur[a], cur[b] = cur[b], cur[a]
		after := vertexCost(a) + vertexCost(b)
		if after <= before {
			total += after - before
		} else {
			cur[a], cur[b] = cur[b], cur[a] // revert
		}
	}
	return cur, total
}

// BestGCongestion estimates the paper's C(H, G) including the bijection
// search: it optimizes the vertex map from `restarts` random starting
// bijections, then measures fractional congestion under the best map
// found. Host and guest must have equal vertex counts.
func BestGCongestion(host, guest *multigraph.Multigraph, spread, swaps, restarts int, rng *rand.Rand) float64 {
	if host.N() != guest.N() {
		panic("embed: BestGCongestion needs |host| == |guest|")
	}
	n := host.N()
	bestFlux := -1.0
	var bestMap []int
	for r := 0; r < restarts || bestMap == nil; r++ {
		start := rng.Perm(n)
		m, flux := OptimizeMap(host, guest, start, swaps, rng)
		if bestFlux < 0 || flux < bestFlux {
			bestFlux, bestMap = flux, m
		}
	}
	return FractionalCongestion(host, guest, bestMap, spread, rng)
}
