package emulation

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Graceful degradation: an emulation that survives host-processor failures
// mid-run. When a host processor dies, the guest processors it simulated
// are remapped onto the nearest surviving host (nearest in the original
// host graph, so locality degrades as little as possible) and the emulation
// continues on the degraded machine. The cost shows up as a slowdown
// penalty — bigger blocks on the survivors plus longer routes — which is
// exactly the quantity the resilience experiments compare across hosts.

// DegradedResult reports an emulation that lost host processors mid-run.
type DegradedResult struct {
	Result // whole-run totals; Slowdown averages the intact and degraded phases

	FailStep  int   // guest step at which the hosts died
	DeadHosts []int // failed host processors, including survivors cut off from the main component
	LiveHosts int   // host processors still doing work after the failure
	Remapped  int   // guest processors moved to a new host

	PreSlowdown  float64 // host ticks per guest step before the failure
	PostSlowdown float64 // after the failure, on the degraded machine
	// SlowdownPenalty = PostSlowdown / PreSlowdown: how much each guest
	// step slowed once the dead hosts' load was absorbed.
	SlowdownPenalty float64
}

// crossTemplate builds the per-step message batch of a contraction
// emulation: both directions of every guest wire whose endpoints live on
// different host processors.
func crossTemplate(guest *topology.Machine, assign []int) []traffic.Message {
	var template []traffic.Message
	for _, e := range guest.Graph.Edges() {
		if e.U >= guest.N() || e.V >= guest.N() {
			continue // switch vertices don't run guest code
		}
		hu, hv := assign[e.U], assign[e.V]
		if hu == hv {
			continue
		}
		for k := int64(0); k < e.Mult; k++ {
			template = append(template, traffic.Message{Src: hu, Dst: hv}, traffic.Message{Src: hv, Dst: hu})
		}
	}
	return template
}

// runDirectPhase routes `steps` guest steps of a contraction emulation and
// returns the host ticks spent (compute + route, sequential).
func runDirectPhase(host *topology.Machine, template []traffic.Message, compute, steps int, rng *rand.Rand) (ticks, computeTicks, routeTicks int) {
	eng := routing.NewEngine(host, routing.Greedy)
	for s := 0; s < steps; s++ {
		computeTicks += compute
		if len(template) > 0 {
			batch := make([]traffic.Message, len(template))
			copy(batch, template)
			routeTicks += eng.Route(batch, rng).Ticks
		}
	}
	return computeTicks + routeTicks, computeTicks, routeTicks
}

// DirectDegraded runs the contraction emulation of `steps` guest steps,
// killing failCount random host processors after failStep steps. The dead
// hosts' guests are remapped to the nearest live host (ties to the smallest
// id) and the remaining steps run on the degraded host. Survivors cut off
// from the largest live component are treated as dead too — an unreachable
// processor can't take part in the emulation even though it still computes.
func DirectDegraded(guest, host *topology.Machine, steps, failStep, failCount int, rng *rand.Rand) DegradedResult {
	if steps < 2 || failStep < 1 || failStep >= steps {
		panic(fmt.Sprintf("emulation: fail step %d must lie strictly inside the %d-step run", failStep, steps))
	}
	assign := ContractionMap(guest, host)
	compute := maxLoad(blockLoads(assign, host.N()))
	template := crossTemplate(guest, assign)

	out := DegradedResult{
		Result: Result{
			Guest: guest, Host: host, GuestSteps: steps,
			Inefficiency: 1.0,
			LoadBound:    float64(guest.N()) / float64(host.N()),
		},
		FailStep: failStep,
	}

	// Phase 1: intact.
	preTicks, c1, r1 := runDirectPhase(host, template, compute, failStep, rng)
	out.ComputeTicks += c1
	out.RouteTicks += r1
	out.PreSlowdown = float64(preTicks) / float64(failStep)

	// The failure: failCount processors die, and anything the partition cut
	// off from the largest live component is effectively dead as well.
	degHost, failed := topology.DeleteRandomProcessors(host, failCount, rng)
	dead := extendToMainComponent(degHost, failed)
	out.DeadHosts = sortedKeys(dead)
	out.LiveHosts = host.N() - len(dead)
	if out.LiveHosts < 1 {
		panic(fmt.Sprintf("emulation: failing %d hosts of %s left no live component", failCount, host.Name))
	}

	// Remap every guest of a dead host to the nearest live host, measured
	// on the original (intact) host graph so the new owner is the closest
	// surviving neighbour of the old one.
	distCache := make(map[int][]int)
	for g, h := range assign {
		if !dead[h] {
			continue
		}
		d, ok := distCache[h]
		if !ok {
			d = host.Graph.BFS(h)
			distCache[h] = d
		}
		best, bestDist := -1, -1
		for v := 0; v < host.N(); v++ {
			if dead[v] || d[v] < 0 {
				continue
			}
			if best < 0 || d[v] < bestDist {
				best, bestDist = v, d[v]
			}
		}
		if best < 0 {
			panic(fmt.Sprintf("emulation: no live host reachable from dead host %d", h))
		}
		assign[g] = best
		out.Remapped++
	}

	// Phase 2: degraded. Bigger blocks, fewer wires, rebuilt routes.
	compute2 := maxLoad(blockLoads(assign, degHost.N()))
	template2 := crossTemplate(guest, assign)
	postSteps := steps - failStep
	postTicks, c2, r2 := runDirectPhase(degHost, template2, compute2, postSteps, rng)
	out.ComputeTicks += c2
	out.RouteTicks += r2
	out.PostSlowdown = float64(postTicks) / float64(postSteps)

	out.HostTicks = preTicks + postTicks
	out.Slowdown = float64(out.HostTicks) / float64(steps)
	if out.PreSlowdown > 0 {
		out.SlowdownPenalty = out.PostSlowdown / out.PreSlowdown
	}
	return out
}

// extendToMainComponent returns the failed set extended with every live
// processor outside the largest live component of the degraded host.
func extendToMainComponent(degHost *topology.Machine, failed map[int]bool) map[int]bool {
	main := mainLiveComponent(degHost, failed)
	inMain := make(map[int]bool, len(main))
	for _, v := range main {
		inMain[v] = true
	}
	dead := make(map[int]bool, len(failed))
	for v := range failed {
		dead[v] = true
	}
	for v := 0; v < degHost.N(); v++ {
		if !failed[v] && !inMain[v] {
			dead[v] = true
		}
	}
	return dead
}

// mainLiveComponent returns the live processors of the degraded host's
// largest component (largest by live-processor count, ties to the component
// holding the smallest processor id, which Components' ordering provides).
func mainLiveComponent(degHost *topology.Machine, failed map[int]bool) []int {
	var best []int
	for _, comp := range degHost.Graph.Components() {
		var live []int
		for _, v := range comp {
			if v < degHost.N() && !failed[v] {
				live = append(live, v)
			}
		}
		if len(live) > len(best) {
			best = live
		}
	}
	return best
}

func sortedKeys(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}
