package emulation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestContractionMapBalanced(t *testing.T) {
	guest := topology.Mesh(2, 8) // 64
	host := topology.Mesh(2, 4)  // 16
	assign := ContractionMap(guest, host)
	loads := blockLoads(assign, host.N())
	for p, l := range loads {
		if l != 4 {
			t.Fatalf("host %d simulates %d guests, want 4", p, l)
		}
	}
}

func TestRandomMapBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	guest := topology.Ring(30)
	host := topology.Ring(7)
	assign := RandomMap(guest, host, rng)
	loads := blockLoads(assign, host.N())
	if got := maxLoad(loads); got > 5 {
		t.Fatalf("max load %d, want <= ceil(30/7) = 5", got)
	}
}

func TestDirectIdentityEmulation(t *testing.T) {
	// Same machine, same size: slowdown should be a small constant (the
	// per-step neighbour exchange plus one compute tick).
	rng := rand.New(rand.NewSource(2))
	guest := topology.Mesh(2, 4)
	host := topology.Mesh(2, 4)
	res := Direct(guest, host, 4, nil, rng)
	if res.LoadBound != 1 {
		t.Fatalf("load bound = %v", res.LoadBound)
	}
	if res.Slowdown < 1 || res.Slowdown > 12 {
		t.Fatalf("identity-emulation slowdown = %.1f, want small constant", res.Slowdown)
	}
	if res.Inefficiency != 1.0 {
		t.Fatalf("inefficiency = %v", res.Inefficiency)
	}
	if res.HostTicks != res.ComputeTicks+res.RouteTicks {
		t.Fatal("tick split inconsistent")
	}
}

func TestDirectSlowdownAtLeastLoad(t *testing.T) {
	// Emulating 64 guests on 4 hosts: slowdown >= 16 just from load.
	rng := rand.New(rand.NewSource(3))
	guest := topology.Mesh(2, 8)
	host := topology.Mesh(2, 2)
	res := Direct(guest, host, 3, nil, rng)
	if res.Slowdown < res.LoadBound {
		t.Fatalf("slowdown %.1f below load bound %.1f", res.Slowdown, res.LoadBound)
	}
}

// The paper's headline: emulating a bandwidth-rich guest (de Bruijn) on a
// bandwidth-poor host (2-d mesh) of the SAME size costs a slowdown far
// above constant — the bandwidth ratio β(G)/β(H) = Θ(√n / lg n).
func TestDirectBandwidthPenaltyDeBruijnOnMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	guest := topology.DeBruijn(6) // 64
	host := topology.Mesh(2, 8)   // 64
	res := Direct(guest, host, 3, nil, rng)
	if res.LoadBound != 1 {
		t.Fatalf("load bound %v", res.LoadBound)
	}
	// β(G)/β(H) = (64/6)/(8) ≈ 1.3 at this size — small, but the emulation
	// must at least pay a constant well above the identity case. Compare
	// directly against mesh-on-mesh.
	self := Direct(topology.Mesh(2, 8), host, 3, nil, rng)
	if res.Slowdown <= self.Slowdown {
		t.Fatalf("de Bruijn on mesh (%.1f) should be slower than mesh on mesh (%.1f)",
			res.Slowdown, self.Slowdown)
	}
}

func TestDirectBadAssignmentPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Direct(topology.Ring(8), topology.Ring(4), 2, []int{0, 1}, rng)
}

func TestDirectZeroStepsPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Direct(topology.Ring(8), topology.Ring(4), 0, nil, rng)
}

func TestCircuitEmulationNonRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	guest := topology.Ring(16)
	host := topology.Ring(4)
	res := Circuit(guest, host, 4, 1, rng)
	if res.Inefficiency != 1.0 {
		t.Fatalf("inefficiency = %v, want 1.0", res.Inefficiency)
	}
	if res.Slowdown < res.LoadBound {
		t.Fatalf("slowdown %.1f below load bound %.1f", res.Slowdown, res.LoadBound)
	}
}

func TestCircuitEmulationRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	guest := topology.Ring(12)
	host := topology.Ring(4)
	res := Circuit(guest, host, 4, 2, rng)
	if res.Inefficiency < 1.9 || res.Inefficiency > 2.1 {
		t.Fatalf("inefficiency = %v, want ~2 (duplicity 2)", res.Inefficiency)
	}
	if res.HostTicks <= 0 {
		t.Fatal("no host ticks")
	}
}

func TestCircuitRejectsSwitchGuests(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Circuit(topology.GlobalBus(8), topology.Ring(4), 2, 1, rng)
}

func TestDirectOntoBusHost(t *testing.T) {
	// A global bus host serializes everything: emulating a ring of 16 on a
	// 16-processor bus pays the wire count every step.
	rng := rand.New(rand.NewSource(10))
	guest := topology.Ring(16)
	host := topology.GlobalBus(16)
	res := Direct(guest, host, 2, nil, rng)
	// 32 messages per step through a rate-1 hub: slowdown >= ~32.
	if res.Slowdown < 20 {
		t.Fatalf("bus-host slowdown %.1f, want >= ~32", res.Slowdown)
	}
}

func TestLocalityBeatsRandomMap(t *testing.T) {
	// Contraction of a big mesh onto a small mesh with BFS blocks should
	// route much less traffic than a random assignment.
	rng := rand.New(rand.NewSource(11))
	guest := topology.Mesh(2, 8)
	host := topology.Mesh(2, 4)
	local := Direct(guest, host, 2, ContractionMap(guest, host), rng)
	random := Direct(guest, host, 2, RandomMap(guest, host, rng), rng)
	if local.RouteTicks >= random.RouteTicks {
		t.Fatalf("local routing %d ticks, random %d: locality should win",
			local.RouteTicks, random.RouteTicks)
	}
}

// Property: slowdown always respects the load-induced lower bound and the
// tick split is consistent.
func TestPropertySlowdownAboveLoad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		guest := topology.Ring(8 + 4*rng.Intn(6))
		host := topology.Ring(3 + rng.Intn(4))
		steps := 1 + rng.Intn(3)
		res := Direct(guest, host, steps, nil, rng)
		if res.HostTicks != res.ComputeTicks+res.RouteTicks {
			return false
		}
		// Compute alone contributes ceil(n/m) per step.
		return res.Slowdown >= res.LoadBound-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the circuit emulator and direct emulator agree within a
// constant factor for non-redundant emulations (they simulate the same
// work and traffic).
func TestPropertyCircuitTracksDirect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		guest := topology.Mesh(2, 4)
		host := topology.Ring(4 + rng.Intn(4))
		steps := 2 + rng.Intn(2)
		d := Direct(guest, host, steps, nil, rng)
		c := Circuit(guest, host, steps, 1, rng)
		ratio := c.Slowdown / d.Slowdown
		return ratio > 0.2 && ratio < 5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDirectPipelinedNeverSlower(t *testing.T) {
	guest := topology.DeBruijn(6)
	host := topology.Mesh(2, 4)
	seq := Direct(guest, host, 3, nil, rand.New(rand.NewSource(21)))
	pipe := DirectPipelined(guest, host, 3, nil, rand.New(rand.NewSource(21)))
	if pipe.HostTicks > seq.HostTicks {
		t.Fatalf("pipelined %d ticks > sequential %d", pipe.HostTicks, seq.HostTicks)
	}
	// Each step still costs at least the dominant component.
	if pipe.HostTicks < seq.ComputeTicks && pipe.HostTicks < seq.RouteTicks {
		t.Fatalf("pipelined %d below both components (%d compute, %d route)",
			pipe.HostTicks, seq.ComputeTicks, seq.RouteTicks)
	}
	if pipe.Slowdown < pipe.LoadBound {
		t.Fatalf("pipelined slowdown %.1f below load bound %.1f", pipe.Slowdown, pipe.LoadBound)
	}
}
