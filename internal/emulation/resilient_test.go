package emulation

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestDirectDegradedRemapsAndFinishes(t *testing.T) {
	guest := topology.Mesh(2, 8) // 64 processors
	host := topology.Mesh(2, 4)  // 16 processors
	rng := rand.New(rand.NewSource(61))
	res := DirectDegraded(guest, host, 8, 4, 3, rng)

	if res.FailStep != 4 || res.GuestSteps != 8 {
		t.Fatalf("phases %d/%d", res.FailStep, res.GuestSteps)
	}
	if len(res.DeadHosts) < 3 {
		t.Fatalf("dead hosts %v, want at least the 3 failed", res.DeadHosts)
	}
	if res.LiveHosts != host.N()-len(res.DeadHosts) {
		t.Fatalf("live %d + dead %d != %d", res.LiveHosts, len(res.DeadHosts), host.N())
	}
	// Every dead host's guests moved: 64/16 = 4 guests per host.
	if res.Remapped < 4*3 {
		t.Fatalf("remapped %d guests, want >= 12", res.Remapped)
	}
	if res.PreSlowdown <= 0 || res.PostSlowdown <= 0 {
		t.Fatalf("slowdowns %v/%v", res.PreSlowdown, res.PostSlowdown)
	}
	// Absorbing dead hosts' load onto survivors must cost slowdown: the
	// compute term alone grows from ceil(64/16) to at least ceil(64/13).
	if res.SlowdownPenalty <= 1 {
		t.Fatalf("penalty %v, want > 1 after losing 3 of 16 hosts", res.SlowdownPenalty)
	}
	// Whole-run slowdown averages the phases.
	lo, hi := res.PreSlowdown, res.PostSlowdown
	if lo > hi {
		lo, hi = hi, lo
	}
	if res.Slowdown < lo || res.Slowdown > hi {
		t.Fatalf("overall slowdown %v outside [%v, %v]", res.Slowdown, lo, hi)
	}
	// The load bound still holds for the whole run.
	if res.Slowdown < res.LoadBound {
		t.Fatalf("slowdown %v beat the load bound %v", res.Slowdown, res.LoadBound)
	}
}

func TestDirectDegradedAssignsOnlyLiveHosts(t *testing.T) {
	guest := topology.Mesh(2, 8)
	host := topology.Torus(2, 4)
	rng := rand.New(rand.NewSource(62))
	res := DirectDegraded(guest, host, 6, 2, 5, rng)
	dead := make(map[int]bool)
	for _, v := range res.DeadHosts {
		dead[v] = true
	}
	// DeadHosts is sorted and within range.
	for i, v := range res.DeadHosts {
		if v < 0 || v >= host.N() {
			t.Fatalf("dead host %d out of range", v)
		}
		if i > 0 && res.DeadHosts[i-1] >= v {
			t.Fatalf("dead hosts not sorted: %v", res.DeadHosts)
		}
	}
	if res.Remapped == 0 {
		t.Fatal("no guests remapped despite 5 dead hosts")
	}
}

func TestDirectDegradedBadArgsPanic(t *testing.T) {
	guest := topology.Mesh(2, 4)
	host := topology.Mesh(2, 2)
	rng := rand.New(rand.NewSource(63))
	for _, tc := range []struct{ steps, failStep int }{
		{1, 0},  // too short to hold two phases
		{4, 0},  // failure before the run starts
		{4, 4},  // failure after the run ends
		{4, 7},  // failure past the end
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("steps=%d failStep=%d did not panic", tc.steps, tc.failStep)
				}
			}()
			DirectDegraded(guest, host, tc.steps, tc.failStep, 1, rng)
		}()
	}
}

// The degraded emulation and the static survivor machinery agree on who is
// alive: every guest ends up on a host inside the largest live component.
func TestDirectDegradedRespectsComponents(t *testing.T) {
	guest := topology.Mesh(2, 6)
	host := topology.LinearArray(8) // any interior failure cuts the array
	rng := rand.New(rand.NewSource(64))
	res := DirectDegraded(guest, host, 6, 3, 2, rng)
	// On a linear array, 2 failures can strand up to a whole segment;
	// whatever survived must be one contiguous live block.
	if res.LiveHosts+len(res.DeadHosts) != host.N() {
		t.Fatalf("live %d + dead %d != %d", res.LiveHosts, len(res.DeadHosts), host.N())
	}
	dead := make(map[int]bool)
	for _, v := range res.DeadHosts {
		dead[v] = true
	}
	// The live set is contiguous on an array: between any two live hosts
	// there is no dead one... only when the cut-off segments were marked
	// dead. Check exactly that: live hosts form one interval.
	first, last, liveSeen := -1, -1, 0
	for v := 0; v < host.N(); v++ {
		if !dead[v] {
			if first < 0 {
				first = v
			}
			last = v
			liveSeen++
		}
	}
	if liveSeen != last-first+1 {
		t.Fatalf("live hosts not contiguous: dead=%v", res.DeadHosts)
	}
}
