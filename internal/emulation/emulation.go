// Package emulation executes emulations of a guest network machine on a
// host machine and measures the achieved slowdown — the quantity the
// paper's Efficient Emulation Theorem lower-bounds.
//
// Two emulators are provided:
//
//   - Direct: the classic contraction emulation. Guest processors are
//     partitioned into |H| blocks; each host processor simulates one block.
//     Every guest step, each host processor spends one tick per simulated
//     guest processor (the load), and all guest wires that cross blocks
//     become messages routed on the host.
//
//   - Circuit: the redundant-model emulation. A circuit for T guest steps
//     is built (internal/circuit), its nodes are assigned to host
//     processors, and the levels are executed in order; arcs crossing
//     processors are routed level by level.
//
// Measured slowdown is host ticks divided by guest steps. The theorem says
// no efficient emulation can beat Ω(max(|G|/|H|, β(G)/β(H))); the tests and
// benches verify the measured values respect (and track) that bound.
package emulation

import (
	"fmt"
	"math/rand"

	"repro/internal/circuit"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// Result reports one measured emulation.
type Result struct {
	Guest, Host *topology.Machine
	GuestSteps  int
	HostTicks   int
	// ComputeTicks and RouteTicks split the work into simulation and
	// communication. For sequential (Direct) runs they sum to HostTicks;
	// for pipelined runs each step costs the max of the two, so HostTicks
	// is smaller than the sum.
	ComputeTicks, RouteTicks int
	// Slowdown = HostTicks / GuestSteps.
	Slowdown float64
	// Inefficiency is the work ratio: host operations (guest-node
	// simulations) per guest operation. 1.0 for non-redundant emulations.
	Inefficiency float64
	// LoadBound = |G|/|H|, the size-induced lower bound on slowdown.
	LoadBound float64
}

// ContractionMap partitions the guest's processors into |host| blocks of
// nearly equal size, ordered by a BFS sweep of the guest so blocks stay
// local, and lays consecutive blocks onto consecutive host processors in
// the host's own BFS order, so neighbouring blocks tend to land on nearby
// host processors. Entry i is the host processor simulating guest
// processor i.
func ContractionMap(guest, host *topology.Machine) []int {
	n, m := guest.N(), host.N()
	if m < 1 {
		panic("emulation: empty host")
	}
	if a := meshContraction(guest, host); a != nil {
		return a
	}
	order := bfsOrder(guest)
	hostOrder := bfsOrder(host)
	assign := make([]int, n)
	for rank, v := range order {
		assign[v] = hostOrder[rank*m/n]
	}
	return assign
}

// meshContraction maps mesh-like guests onto mesh-like hosts of the same
// dimension by coordinate scaling (each host cell simulates an aligned
// subgrid), which both minimizes cross traffic and spreads it over every
// host wire. Returns nil when the pair doesn't qualify.
func meshContraction(guest, host *topology.Machine) []int {
	meshy := func(f topology.Family) bool {
		return f == topology.MeshFamily || f == topology.TorusFamily || f == topology.XGridFamily
	}
	if !meshy(guest.Family) || !meshy(host.Family) || guest.Dim != host.Dim || guest.Dim < 1 {
		return nil
	}
	if guest.Side < host.Side {
		return nil // expansion, not contraction; fall back to BFS blocks
	}
	// Trust the coordinate metadata only if it actually describes the
	// machines: a degraded survivor can carry a stale Side/Dim claiming
	// Side^Dim processors it no longer has, and decoding coordinates from
	// that lie would assign guest work to nonexistent host processors.
	if sidePow(guest.Side, guest.Dim) != guest.N() || sidePow(host.Side, host.Dim) != host.N() {
		return nil
	}
	dim := guest.Dim
	assign := make([]int, guest.N())
	for v := range assign {
		// Decode guest coordinates, scale each into the host's side.
		id := v
		hid := 0
		stride := 1
		for d := 0; d < dim; d++ {
			c := id % guest.Side
			id /= guest.Side
			hc := c * host.Side / guest.Side
			hid += hc * stride
			stride *= host.Side
		}
		assign[v] = hid
	}
	return assign
}

// sidePow returns side^dim without floating point.
func sidePow(side, dim int) int {
	out := 1
	for i := 0; i < dim; i++ {
		out *= side
	}
	return out
}

// RandomMap assigns guest processors to host processors in random balanced
// fashion — the locality-free baseline.
func RandomMap(guest, host *topology.Machine, rng *rand.Rand) []int {
	n, m := guest.N(), host.N()
	assign := make([]int, n)
	perm := rng.Perm(n)
	for rank, v := range perm {
		assign[v] = rank * m / n
	}
	return assign
}

// bfsOrder returns the guest's processor ids in BFS order from processor 0
// (switch vertices are excluded).
func bfsOrder(guest *topology.Machine) []int {
	dist := guest.Graph.BFS(0)
	order := make([]int, 0, guest.N())
	// Counting sort by distance keeps the sweep O(n + diameter).
	maxD := 0
	for v := 0; v < guest.N(); v++ {
		if dist[v] > maxD {
			maxD = dist[v]
		}
	}
	buckets := make([][]int, maxD+1)
	for v := 0; v < guest.N(); v++ {
		if dist[v] < 0 {
			panic(fmt.Sprintf("emulation: guest processor %d unreachable", v))
		}
		buckets[dist[v]] = append(buckets[dist[v]], v)
	}
	for _, b := range buckets {
		order = append(order, b...)
	}
	return order
}

// blockLoads returns how many guest processors each host processor
// simulates.
func blockLoads(assign []int, hostN int) []int {
	loads := make([]int, hostN)
	for _, p := range assign {
		loads[p]++
	}
	return loads
}

// maxLoad returns the largest block.
func maxLoad(loads []int) int {
	worst := 0
	for _, l := range loads {
		if l > worst {
			worst = l
		}
	}
	return worst
}

// Direct runs the contraction emulation of `steps` guest steps under the
// given assignment (nil for the default ContractionMap) and returns the
// measured result. Every guest step, each guest wire carries one message in
// each direction (the most general neighbour-exchange step the redundant
// model must support). Compute and communication are sequential per step;
// DirectPipelined overlaps them.
func Direct(guest, host *topology.Machine, steps int, assign []int, rng *rand.Rand) Result {
	return direct(guest, host, steps, assign, false, rng)
}

// DirectPipelined is Direct with compute/communication overlap: each step
// costs max(compute, route) host ticks instead of their sum, modelling a
// host that exchanges boundary words while it simulates interior ones.
func DirectPipelined(guest, host *topology.Machine, steps int, assign []int, rng *rand.Rand) Result {
	return direct(guest, host, steps, assign, true, rng)
}

func direct(guest, host *topology.Machine, steps int, assign []int, overlap bool, rng *rand.Rand) Result {
	if steps < 1 {
		panic(fmt.Sprintf("emulation: steps %d < 1", steps))
	}
	if assign == nil {
		assign = ContractionMap(guest, host)
	}
	if len(assign) != guest.N() {
		panic(fmt.Sprintf("emulation: assignment covers %d of %d guest processors", len(assign), guest.N()))
	}
	loads := blockLoads(assign, host.N())
	compute := maxLoad(loads)
	eng := routing.NewEngine(host, routing.Greedy)

	// The per-step message batch: both directions of every cross-block
	// guest wire (multiplicity counts as parallel messages).
	template := crossTemplate(guest, assign)

	res := Result{
		Guest: guest, Host: host, GuestSteps: steps,
		Inefficiency: 1.0,
		LoadBound:    float64(guest.N()) / float64(host.N()),
	}
	for s := 0; s < steps; s++ {
		res.ComputeTicks += compute
		stepRoute := 0
		if len(template) > 0 {
			batch := make([]traffic.Message, len(template))
			copy(batch, template)
			stepRoute = eng.Route(batch, rng).Ticks
			res.RouteTicks += stepRoute
		}
		if overlap {
			// Pipelined: the step costs the max of compute and route.
			if stepRoute > compute {
				res.HostTicks += stepRoute
			} else {
				res.HostTicks += compute
			}
		} else {
			res.HostTicks += compute + stepRoute
		}
	}
	res.Slowdown = float64(res.HostTicks) / float64(steps)
	return res
}

// Circuit runs the redundant-model emulation: build a circuit for `steps`
// guest steps with the given duplicity (1 = non-redundant), assign all
// copies of guest vertex u alongside u's contraction block, and execute
// level by level, routing each level's cross-processor arcs.
func Circuit(guest, host *topology.Machine, steps, duplicity int, rng *rand.Rand) Result {
	if steps < 1 {
		panic(fmt.Sprintf("emulation: steps %d < 1", steps))
	}
	if guest.N() != guest.Graph.N() {
		panic(fmt.Sprintf("emulation: guest %s has switch vertices; only pure processor machines can be emulated", guest.Name))
	}
	var c *circuit.Circuit
	if duplicity <= 1 {
		c = circuit.NonRedundant(guest.Graph, steps)
		duplicity = 1
	} else {
		c = circuit.Redundant(guest.Graph, steps, duplicity, rng)
	}
	assign := ContractionMap(guest, host)
	eng := routing.NewEngine(host, routing.Greedy)

	res := Result{
		Guest: guest, Host: host, GuestSteps: steps,
		Inefficiency: float64(c.NodeCount()) / (float64(guest.N()) * float64(steps+1)),
		LoadBound:    float64(guest.N()) / float64(host.N()),
	}
	// Per level: simulate every circuit node of the level (compute), then
	// route the arcs into the next level that cross host processors.
	for i := 0; i <= c.Steps; i++ {
		levelLoads := make([]int, host.N())
		for _, node := range c.Level(i) {
			levelLoads[assign[node.Vertex]]++
		}
		res.ComputeTicks += maxLoad(levelLoads)
		if i == c.Steps {
			break
		}
		var batch []traffic.Message
		for _, a := range c.ArcsFrom(i) {
			hu, hv := assign[a.From.Vertex], assign[a.To.Vertex]
			if hu != hv {
				batch = append(batch, traffic.Message{Src: hu, Dst: hv})
			}
		}
		if len(batch) > 0 {
			st := eng.Route(batch, rng)
			res.RouteTicks += st.Ticks
		}
	}
	res.HostTicks = res.ComputeTicks + res.RouteTicks
	res.Slowdown = float64(res.HostTicks) / float64(steps)
	return res
}
