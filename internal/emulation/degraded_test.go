package emulation

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// faultedMeshSurvivor knocks processors out of a 2-d mesh and extracts the
// surviving component: a machine that is mesh-descended but no longer has
// Side^Dim geometry.
func faultedMeshSurvivor(t *testing.T, side, kill int, seed int64) *topology.Machine {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := topology.Mesh(2, side)
	d, failed := topology.DeleteRandomProcessors(m, kill, rng)
	s := topology.SurvivingSubmachine(d, failed)
	if s.N() >= m.N() {
		t.Fatalf("survivor kept %d of %d processors", s.N(), m.N())
	}
	return s
}

// Regression: a degraded mesh survivor used to carry its parent's Side/Dim,
// so meshContraction decoded coordinates of processors that no longer exist
// and assigned guest work to host ids >= host.N().
func TestContractionMapOntoDegradedMeshHost(t *testing.T) {
	guest := topology.Mesh(2, 8)
	host := faultedMeshSurvivor(t, 8, 10, 11)
	assign := ContractionMap(guest, host)
	for v, p := range assign {
		if p < 0 || p >= host.N() {
			t.Fatalf("guest %d assigned to host %d, but host has only %d live processors", v, p, host.N())
		}
	}
}

func TestContractionMapFromDegradedMeshGuest(t *testing.T) {
	guest := faultedMeshSurvivor(t, 8, 10, 12)
	host := topology.Mesh(2, 4)
	assign := ContractionMap(guest, host)
	if len(assign) != guest.N() {
		t.Fatalf("assignment covers %d of %d survivors", len(assign), guest.N())
	}
	for v, p := range assign {
		if p < 0 || p >= host.N() {
			t.Fatalf("guest %d assigned to host %d of %d", v, p, host.N())
		}
	}
}

// End-to-end: emulating on (and of) a faulted mesh must route every message
// between live processors and produce a finite positive slowdown.
func TestDirectEmulationOnFaultedMesh(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	survivor := faultedMeshSurvivor(t, 8, 10, 14)

	// Survivor as host: an intact mesh guest contracts onto what's left.
	res := Direct(topology.Mesh(2, 8), survivor, 3, nil, rng)
	if res.Slowdown <= 0 || res.HostTicks <= 0 {
		t.Fatalf("survivor-host emulation: %+v", res)
	}

	// Survivor as guest: its irregular remnant runs on an intact mesh.
	res = Direct(survivor, topology.Mesh(2, 4), 3, nil, rng)
	if res.Slowdown <= 0 || res.HostTicks <= 0 {
		t.Fatalf("survivor-guest emulation: %+v", res)
	}
}

// An intact machine passed through SurvivingSubmachine keeps its geometry,
// so the coordinate-scaling fast path still applies.
func TestIntactSurvivorKeepsMeshContraction(t *testing.T) {
	m := topology.Mesh(2, 8)
	s := topology.SurvivingSubmachine(m, nil)
	if s.Side != 8 || s.Dim != 2 {
		t.Fatalf("intact survivor lost geometry: Side=%d Dim=%d", s.Side, s.Dim)
	}
	if a := meshContraction(s, topology.Mesh(2, 4)); a == nil {
		t.Fatal("intact survivor should still qualify for coordinate contraction")
	}
}
