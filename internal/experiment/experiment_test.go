package experiment

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/topology"
)

// The core contract: job results depend only on (seed, key), never on the
// worker count or submission order.
func TestJobResultsInvariantUnderWorkerCount(t *testing.T) {
	run := func(workers int, reverse bool) []int64 {
		r := New(42, workers)
		keys := make([]string, 16)
		for i := range keys {
			keys[i] = fmt.Sprintf("job/%d", i)
		}
		futs := make([]*Future[int64], len(keys))
		idx := make([]int, len(keys))
		for i := range idx {
			idx[i] = i
		}
		if reverse {
			for i, j := 0, len(idx)-1; i < j; i, j = i+1, j-1 {
				idx[i], idx[j] = idx[j], idx[i]
			}
		}
		for _, i := range idx {
			futs[i] = Go(r, keys[i], func(rng *rand.Rand) int64 { return rng.Int63() })
		}
		return Collect(futs)
	}
	want := run(1, false)
	for _, workers := range []int{1, 2, 8} {
		for _, reverse := range []bool{false, true} {
			got := run(workers, reverse)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d reverse=%v: job %d = %d, want %d",
						workers, reverse, i, got[i], want[i])
				}
			}
		}
	}
}

func TestRNGIndependentOfCallOrder(t *testing.T) {
	a := New(7, 2)
	b := New(7, 2)
	_ = a.RNG("warmup").Int63() // extra draws must not shift other streams
	if got, want := a.RNG("x").Int63(), b.RNG("x").Int63(); got != want {
		t.Fatalf("stream x differs across runners: %d vs %d", got, want)
	}
	if a.Seed("x") == a.Seed("y") {
		t.Fatal("distinct keys collided")
	}
}

// A job that Waits on not-yet-started jobs must not deadlock the pool: Wait
// claims and runs pending jobs inline.
func TestNestedWaitDoesNotDeadlock(t *testing.T) {
	r := New(1, 1) // one slot: the parent occupies it while waiting
	parent := Go(r, "parent", func(rng *rand.Rand) int {
		children := make([]*Future[int], 8)
		for i := range children {
			key := fmt.Sprintf("child/%d", i)
			children[i] = Go(r, key, func(rng *rand.Rand) int { return 1 })
		}
		total := 0
		for _, c := range children {
			total += c.Wait()
		}
		return total
	})
	if got := parent.Wait(); got != 8 {
		t.Fatalf("parent = %d, want 8", got)
	}
}

func TestBetaCacheComputesOnce(t *testing.T) {
	r := New(3, 4)
	// Two sections asking for the same machine under equivalent options
	// (zero value vs explicit defaults) must share one future.
	f1 := r.BetaFuture(topology.MeshFamily, 2, 64, bandwidth.MeasureOptions{})
	f2 := r.BetaFuture(topology.MeshFamily, 2, 64, bandwidth.MeasureOptions{LoadFactors: []int{2, 4, 8}, Trials: 2})
	if f1 != f2 {
		t.Fatal("canonical-equal options missed the cache")
	}
	m1 := f1.Wait()
	m2 := r.Beta(topology.MeshFamily, 2, 64, bandwidth.MeasureOptions{})
	if m1.Beta != m2.Beta {
		t.Fatalf("cache returned different values: %v vs %v", m1.Beta, m2.Beta)
	}
	if m1.Beta <= 0 {
		t.Fatalf("non-positive beta %v", m1.Beta)
	}
}

// Cached β equals what a cold single-job run on the same key stream yields:
// memoization must not shift numbers.
func TestBetaCacheMatchesColdRun(t *testing.T) {
	opts := bandwidth.MeasureOptions{}.Canonical()
	r1 := New(9, 4)
	warm := r1.Beta(topology.DeBruijnFamily, 0, 64, opts)

	r2 := New(9, 1)
	cold := r2.Beta(topology.DeBruijnFamily, 0, 64, opts)
	if warm.Beta != cold.Beta {
		t.Fatalf("beta differs across worker counts: %v vs %v", warm.Beta, cold.Beta)
	}
}

func TestLambdaCache(t *testing.T) {
	r := New(5, 2)
	a := r.Lambda(topology.MeshFamily, 2, 64)
	b := r.Lambda(topology.MeshFamily, 2, 64)
	if a != b {
		t.Fatalf("lambda cache returned %+v then %+v", a, b)
	}
	if a.Diameter != 14 { // 8x8 mesh: 2*(8-1)
		t.Fatalf("mesh 8x8 diameter = %d, want 14", a.Diameter)
	}
	if a.AvgDist <= 0 {
		t.Fatalf("avg dist %v", a.AvgDist)
	}
}
