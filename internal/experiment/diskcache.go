package experiment

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The persistent layer under the in-memory memoization: measurement results
// as content-keyed JSON files, so repeated report/crossover runs skip the
// simulator entirely. The disk key is the in-memory key (betaKey/lambdaKey)
// extended with the runner's base seed and a measurement version:
//
//   - the seed, because a job's value is a function of (base seed, key) —
//     two runners with different seeds must never share entries;
//   - the version, bumped whenever measurement semantics change (routing
//     randomness re-keyed, estimator changed), so entries written by an
//     older build are stale by construction and simply never match.
//
// Corrupt, unreadable, or mismatched files are treated as misses and
// overwritten; the cache never makes a run fail. Writes go through a temp
// file + rename so concurrent processes see whole entries or nothing.
//
// Determinism on a hit is exact: a β job replays the machine construction
// on its keyed stream (topology.Build draws the same prefix either way) and
// substitutes the stored numbers for the measurement, so hit and miss paths
// return identical values.

// MeasurementVersion names the semantics of the cached values. Bump it
// whenever the simulator or estimators change measured numbers; stale
// entries then miss on key comparison and are rewritten. Exported so the
// netemud response cache can fold it into its own keys and go stale in
// lockstep with the measurement caches.
const MeasurementVersion = "m4"

// DiskCache is a directory of JSON measurement entries. Safe for
// concurrent use.
type DiskCache struct {
	dir      string
	maxBytes atomic.Int64 // 0 = unlimited
	hits     atomic.Int64
	misses   atomic.Int64
	evicted  atomic.Int64

	evictMu sync.Mutex // one evictor at a time; store itself stays lock-free
}

// OpenDiskCache opens (creating if needed) a cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: open disk cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

// SetMaxBytes caps the cache directory's total entry size; every store
// that pushes the directory past the cap evicts oldest-mtime-first entries
// until it fits again. 0 (the default) disables eviction — the historical
// grow-without-bound behaviour.
func (c *DiskCache) SetMaxBytes(n int64) {
	if n < 0 {
		n = 0
	}
	c.maxBytes.Store(n)
}

// Evicted returns how many entries the size cap has deleted so far.
func (c *DiskCache) Evicted() int64 { return c.evicted.Load() }

// Counts returns how many lookups hit and missed so far. Loads that fail
// (absent, corrupt, stale, or colliding entries) all count as misses.
func (c *DiskCache) Counts() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// diskEntry is the stored form: the full key guards against hash-collision
// false hits and doubles as a human-readable record of what the file holds.
type diskEntry struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// path maps a key to its file. FNV-1a over the full key; collisions are
// handled by the stored-key comparison in load, not by the name.
func (c *DiskCache) path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%016x.json", h.Sum64()))
}

// Load reads the entry for key into out, reporting whether it hit. Every
// failure mode — missing file, unreadable JSON, a different key in the
// file, value/out type mismatch — is a miss: a stale or foreign cache
// directory degrades to recomputation, never to a wrong value or an
// error. Exported for consumers (the netemud server) that key off
// canonical RunSpec strings directly rather than through a Runner.
//
// A hit touches the entry's mtime, so enforceCap's oldest-mtime-first
// order is genuine LRU: frequently read entries stay young however long
// ago they were written. Best-effort like everything else here — on a
// read-only directory the cache degrades to FIFO eviction, not failure.
func (c *DiskCache) Load(key string, out any) bool {
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		c.misses.Add(1)
		return false
	}
	var e diskEntry
	if json.Unmarshal(data, &e) != nil || e.Key != key || json.Unmarshal(e.Value, out) != nil {
		c.misses.Add(1)
		return false
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	c.hits.Add(1)
	return true
}

// Store writes the entry for key. Errors are swallowed: a read-only or full
// disk degrades the cache to a no-op, never the run to a failure. With a
// size cap set, a store that pushes the directory over the cap evicts
// oldest-mtime-first entries until it fits.
func (c *DiskCache) Store(key string, val any) {
	raw, err := json.Marshal(val)
	if err != nil {
		return
	}
	data, err := json.MarshalIndent(diskEntry{Key: key, Value: raw}, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if os.Rename(name, c.path(key)) != nil {
		os.Remove(name)
		return
	}
	c.enforceCap(filepath.Base(c.path(key)))
}

// enforceCap deletes oldest-mtime-first entries until the directory's
// total entry size fits under the cap, never touching exempt (the entry
// whose store triggered the sweep). Exemption matters when one entry
// alone exceeds the cap: sorting by mtime would otherwise delete the
// file that was just written — its Load-touched mtime can even make it
// the oldest — turning every later lookup of that key into a recompute
// that re-stores and re-evicts forever. Errors are swallowed like
// Store's: eviction is best-effort hygiene.
func (c *DiskCache) enforceCap(exempt string) {
	cap := c.maxBytes.Load()
	if cap <= 0 {
		return
	}
	c.evictMu.Lock()
	defer c.evictMu.Unlock()
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, de := range entries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue // skip temp files and foreign content
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{name: de.Name(), size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
	}
	if total <= cap {
		return
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name // stable order for equal mtimes
	})
	for _, f := range files {
		if total <= cap {
			break
		}
		if f.name == exempt {
			continue
		}
		if os.Remove(filepath.Join(c.dir, f.name)) == nil {
			total -= f.size
			c.evicted.Add(1)
		}
	}
}

// UseDiskCache adds a persistent layer under the runner's in-memory
// memoization: β and λ jobs consult the cache before running the simulator
// and persist what they measure. Entries are keyed by (measurement
// identity, base seed, measurement version), so a cache directory can be
// shared across runs, seeds, and versions without ever serving a wrong
// value. Attach before submitting jobs.
func (r *Runner) UseDiskCache(c *DiskCache) { r.disk = c }

// AttachDiskCache is UseDiskCache over a directory path: it opens
// (creating if needed) the directory and attaches it.
func (r *Runner) AttachDiskCache(dir string) (*DiskCache, error) {
	c, err := OpenDiskCache(dir)
	if err != nil {
		return nil, err
	}
	r.disk = c
	return c, nil
}

// diskKey extends an in-memory memo key with the run identity.
func (r *Runner) diskKey(key string) string {
	return fmt.Sprintf("%s/seed=%d/%s", key, r.seed, MeasurementVersion)
}
