package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bandwidth"
	"repro/internal/topology"
)

// The disk-cache contract: a warm run returns values bit-identical to the
// cold run that populated it, wrong-seed and corrupt entries degrade to
// misses, and a cache failure never fails the measurement.

func betaOn(t *testing.T, seed int64, dir string) bandwidth.Measurement {
	t.Helper()
	r := New(seed, 2)
	if dir != "" {
		if _, err := r.AttachDiskCache(dir); err != nil {
			t.Fatal(err)
		}
	}
	return r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
}

func TestDiskCacheHitIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := betaOn(t, 9, dir)

	r := New(9, 2)
	c, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, misses := c.Counts(); hits != 1 || misses != 0 {
		t.Fatalf("warm run: %d hits, %d misses, want 1/0", hits, misses)
	}
	nocache := betaOn(t, 9, "")

	for _, got := range []bandwidth.Measurement{warm, nocache} {
		if got.Beta != cold.Beta || got.Dist != cold.Dist || len(got.RateByLoad) != len(cold.RateByLoad) {
			t.Fatalf("measurement diverged: got %+v, want %+v", got, cold)
		}
		for k, v := range cold.RateByLoad {
			if got.RateByLoad[k] != v {
				t.Fatalf("RateByLoad[%d] = %v, want %v", k, got.RateByLoad[k], v)
			}
		}
	}
	// The hit path must still rebuild the machine (sections use it).
	if warm.Machine == nil || warm.Machine.N() != cold.Machine.N() {
		t.Fatal("warm hit did not rebuild the machine")
	}
}

func TestDiskCacheKeyedBySeed(t *testing.T) {
	dir := t.TempDir()
	betaOn(t, 9, dir)

	r := New(10, 2)
	c, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, _ := c.Counts(); hits != 0 {
		t.Fatalf("different seed hit the cache %d times", hits)
	}
}

func TestDiskCacheCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	want := betaOn(t, 9, dir)

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("expected cache files, got %v (%v)", files, err)
	}
	corruptions := []struct {
		name string
		data []byte
	}{
		{"truncated", []byte(`{"key": "beta/`)},
		{"not json", []byte("\x00\x01garbage")},
		{"wrong key", []byte(`{"key": "something/else", "value": {"beta": 1}}`)},
		{"wrong value type", []byte(`{"key": "x", "value": "a string"}`)},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			for _, f := range files {
				if err := os.WriteFile(f, c.data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			r := New(9, 2)
			dc, err := r.AttachDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
			if hits, misses := dc.Counts(); hits != 0 || misses == 0 {
				t.Fatalf("corrupt entry served: %d hits, %d misses", hits, misses)
			}
			if got.Beta != want.Beta {
				t.Fatalf("remeasured β %v, want %v", got.Beta, want.Beta)
			}
		})
	}
	// The remeasurement rewrote a good entry: next run hits again.
	r := New(9, 2)
	dc, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, _ := dc.Counts(); hits != 1 {
		t.Fatal("rewritten entry did not hit")
	}
}

func TestDiskCacheLambda(t *testing.T) {
	dir := t.TempDir()
	r1 := New(4, 1)
	if _, err := r1.AttachDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	cold := r1.Lambda(topology.TreeFamily, 0, 15)

	r2 := New(4, 1)
	c, err := r2.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := r2.Lambda(topology.TreeFamily, 0, 15)
	if hits, misses := c.Counts(); hits != 1 || misses != 0 {
		t.Fatalf("λ warm run: %d hits, %d misses", hits, misses)
	}
	if warm != cold {
		t.Fatalf("λ hit %+v differs from cold %+v", warm, cold)
	}
}
