package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bandwidth"
	"repro/internal/topology"
)

// The disk-cache contract: a warm run returns values bit-identical to the
// cold run that populated it, wrong-seed and corrupt entries degrade to
// misses, and a cache failure never fails the measurement.

func betaOn(t *testing.T, seed int64, dir string) bandwidth.Measurement {
	t.Helper()
	r := New(seed, 2)
	if dir != "" {
		if _, err := r.AttachDiskCache(dir); err != nil {
			t.Fatal(err)
		}
	}
	return r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
}

func TestDiskCacheHitIsBitIdentical(t *testing.T) {
	dir := t.TempDir()
	cold := betaOn(t, 9, dir)

	r := New(9, 2)
	c, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, misses := c.Counts(); hits != 1 || misses != 0 {
		t.Fatalf("warm run: %d hits, %d misses, want 1/0", hits, misses)
	}
	nocache := betaOn(t, 9, "")

	for _, got := range []bandwidth.Measurement{warm, nocache} {
		if got.Beta != cold.Beta || got.Dist != cold.Dist || len(got.RateByLoad) != len(cold.RateByLoad) {
			t.Fatalf("measurement diverged: got %+v, want %+v", got, cold)
		}
		for k, v := range cold.RateByLoad {
			if got.RateByLoad[k] != v {
				t.Fatalf("RateByLoad[%d] = %v, want %v", k, got.RateByLoad[k], v)
			}
		}
	}
	// The hit path must still rebuild the machine (sections use it).
	if warm.Machine == nil || warm.Machine.N() != cold.Machine.N() {
		t.Fatal("warm hit did not rebuild the machine")
	}
}

func TestDiskCacheKeyedBySeed(t *testing.T) {
	dir := t.TempDir()
	betaOn(t, 9, dir)

	r := New(10, 2)
	c, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, _ := c.Counts(); hits != 0 {
		t.Fatalf("different seed hit the cache %d times", hits)
	}
}

func TestDiskCacheCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	want := betaOn(t, 9, dir)

	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("expected cache files, got %v (%v)", files, err)
	}
	corruptions := []struct {
		name string
		data []byte
	}{
		{"truncated", []byte(`{"key": "beta/`)},
		{"not json", []byte("\x00\x01garbage")},
		{"wrong key", []byte(`{"key": "something/else", "value": {"beta": 1}}`)},
		{"wrong value type", []byte(`{"key": "x", "value": "a string"}`)},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			for _, f := range files {
				if err := os.WriteFile(f, c.data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			r := New(9, 2)
			dc, err := r.AttachDiskCache(dir)
			if err != nil {
				t.Fatal(err)
			}
			got := r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
			if hits, misses := dc.Counts(); hits != 0 || misses == 0 {
				t.Fatalf("corrupt entry served: %d hits, %d misses", hits, misses)
			}
			if got.Beta != want.Beta {
				t.Fatalf("remeasured β %v, want %v", got.Beta, want.Beta)
			}
		})
	}
	// The remeasurement rewrote a good entry: next run hits again.
	r := New(9, 2)
	dc, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, _ := dc.Counts(); hits != 1 {
		t.Fatal("rewritten entry did not hit")
	}
}

func TestDiskCacheLambda(t *testing.T) {
	dir := t.TempDir()
	r1 := New(4, 1)
	if _, err := r1.AttachDiskCache(dir); err != nil {
		t.Fatal(err)
	}
	cold := r1.Lambda(topology.TreeFamily, 0, 15)

	r2 := New(4, 1)
	c, err := r2.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := r2.Lambda(topology.TreeFamily, 0, 15)
	if hits, misses := c.Counts(); hits != 1 || misses != 0 {
		t.Fatalf("λ warm run: %d hits, %d misses", hits, misses)
	}
	if warm != cold {
		t.Fatalf("λ hit %+v differs from cold %+v", warm, cold)
	}
}

// TestDiskCacheStaleKeyFormatDegradesToMiss is the key-migration
// regression: entries written under the pre-RunSpec ad-hoc key format
// ("beta/Mesh^2/..." identity strings) must read as clean misses under the
// canonical-key scheme — never a wrong hit, never an error — and get
// overwritten by fresh entries that then hit.
func TestDiskCacheStaleKeyFormatDegradesToMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A plausible old-format entry, stored under its own (old) key.
	oldKey := "beta/Mesh^2/2/36/lf=[2 4 8],t=2,s=0/seed=9/m4"
	c.Store(oldKey, betaEntry{Dist: "symmetric", Beta: 99, RateByLoad: map[int]float64{2: 99}})

	// A fresh run over the same directory must miss (different canonical
	// key → different file), measure, and store its own entry...
	r := New(9, 2)
	dc, err := r.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, _ := dc.Counts(); hits != 0 {
		t.Fatalf("stale-format entry served as a hit (%d hits)", hits)
	}
	if got.Beta == 99 {
		t.Fatal("stale-format value leaked into a fresh measurement")
	}
	// ...which the next run hits.
	r2 := New(9, 2)
	dc2, err := r2.AttachDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm := r2.Beta(topology.MeshFamily, 2, 36, bandwidth.MeasureOptions{})
	if hits, _ := dc2.Counts(); hits != 1 {
		t.Fatal("fresh canonical entry did not hit")
	}
	if warm.Beta != got.Beta {
		t.Fatalf("warm β %v != cold β %v", warm.Beta, got.Beta)
	}
}

// TestDiskCacheUnlimitedByDefault pins the default: no cap, no eviction,
// however many entries accumulate.
func TestDiskCacheUnlimitedByDefault(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		c.Store(fmt.Sprintf("key-%d", i), map[string]int{"i": i})
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 50 {
		t.Fatalf("unlimited cache holds %d entries, want 50", len(files))
	}
	if c.Evicted() != 0 {
		t.Fatalf("unlimited cache evicted %d entries", c.Evicted())
	}
}

// TestDiskCacheEvictsOldestFirst: with a cap set, stores evict
// oldest-mtime entries first and the newest survive.
func TestDiskCacheEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Measure one entry's size, then cap the directory at three entries.
	c.Store("probe", map[string]string{"v": "0123456789"})
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != 1 {
		t.Fatalf("probe store wrote %d files", len(files))
	}
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	entrySize := info.Size()
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	c.SetMaxBytes(3*entrySize + entrySize/2)

	// Store five same-size entries with strictly increasing mtimes (the
	// filesystem clock may be coarse, so force them).
	keys := []string{"a", "b", "c", "d", "e"}
	base := time.Now().Add(-time.Hour)
	for i, k := range keys {
		c.Store(k, map[string]string{"v": "0123456789"})
		if err := os.Chtimes(c.path(k), base.Add(time.Duration(i)*time.Minute), base.Add(time.Duration(i)*time.Minute)); err != nil {
			t.Fatal(err)
		}
		c.enforceCap("") // re-run with the forced mtimes in place
	}
	// The oldest entries (a, b) must be gone; the newest three must hit.
	var sink map[string]string
	for _, k := range []string{"a", "b"} {
		if c.Load(k, &sink) {
			t.Errorf("evicted entry %q still hits", k)
		}
	}
	for _, k := range []string{"c", "d", "e"} {
		if !c.Load(k, &sink) {
			t.Errorf("young entry %q was evicted", k)
		}
	}
	if c.Evicted() < 2 {
		t.Errorf("evicted counter %d, want >= 2", c.Evicted())
	}
}

// entrySizeOf measures one stored entry's on-disk size by probing an
// otherwise-empty cache, leaving the directory empty again.
func entrySizeOf(t *testing.T, c *DiskCache, val any) int64 {
	t.Helper()
	c.Store("size-probe", val)
	info, err := os.Stat(c.path("size-probe"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(c.path("size-probe")); err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestDiskCacheEvictionIsLRUNotFIFO is the regression for the
// FIFO-masquerading-as-LRU bug: Load never refreshed an entry's mtime,
// so the oldest-*written* entry was evicted first even when it was the
// most-*read* one. Store A then B, re-read A repeatedly, cap the cache,
// and B — written later but never read — must be evicted before A.
func TestDiskCacheEvictionIsLRUNotFIFO(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	val := map[string]string{"v": "0123456789"}
	entrySize := entrySizeOf(t, c, val)

	c.Store("a", val)
	c.Store("b", val)
	// Force a strict write-order clock: A written long before B, so a
	// FIFO evictor would pick A first. (The filesystem clock may be too
	// coarse to rely on.)
	base := time.Now().Add(-2 * time.Hour)
	for i, k := range []string{"a", "b"} {
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(c.path(k), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Re-read A repeatedly: each hit must refresh its mtime.
	var sink map[string]string
	for i := 0; i < 3; i++ {
		if !c.Load("a", &sink) {
			t.Fatal("entry a did not hit")
		}
	}
	// Cap to two entries and store C: the eviction sweep must pick B
	// (least recently used), not A (oldest written, most read).
	c.SetMaxBytes(2*entrySize + entrySize/2)
	c.Store("c", val)
	if c.Load("b", &sink) {
		t.Error("least-recently-used entry b survived eviction")
	}
	if !c.Load("a", &sink) {
		t.Error("hot entry a was evicted before cold entry b")
	}
	if !c.Load("c", &sink) {
		t.Error("just-stored entry c was evicted")
	}
	if got := c.Evicted(); got != 1 {
		t.Errorf("evicted counter %d, want 1", got)
	}
}

// TestDiskCacheOversizedEntrySurvivesItsOwnStore is the regression for
// the recompute loop: when a single entry exceeds the cap, the eviction
// sweep its own store triggers must not delete it — otherwise every
// lookup of that key misses, recomputes, re-stores, and re-evicts
// forever. Older entries are still fair game.
func TestDiskCacheOversizedEntrySurvivesItsOwnStore(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	small := map[string]string{"v": "x"}
	c.Store("small", small)
	// Age the small entry so mtime order is unambiguous.
	old := time.Now().Add(-time.Hour)
	if err := os.Chtimes(c.path("small"), old, old); err != nil {
		t.Fatal(err)
	}

	big := map[string]string{"v": strings.Repeat("y", 4096)}
	c.SetMaxBytes(1024) // smaller than the big entry alone
	c.Store("big", big)

	var sink map[string]string
	if !c.Load("big", &sink) {
		t.Fatal("oversized entry was evicted by its own store")
	}
	if c.Load("small", &sink) {
		t.Error("older entry survived an over-cap sweep")
	}
	// The survivor keeps surviving: a second store of the same key (the
	// recompute-loop shape) still leaves it servable.
	c.Store("big", big)
	if !c.Load("big", &sink) {
		t.Fatal("oversized entry evicted on re-store")
	}
}
