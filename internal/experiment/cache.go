package experiment

import (
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/routing"
	"repro/internal/runspec"
	"repro/internal/topology"
	"repro/internal/traffic"
)

// The memoized measurements. Keys are canonical runspec.Spec strings —
// the same identity the netemud coalescer and the disk cache use — so a
// report section asking for β(Mesh², 64) under default options and a
// crossover sweep asking for the same machine share one computation. The
// RNG stream is derived from the same key, which keeps cached and
// uncached runs bit-identical: the first requester and a cold run both
// draw stream(key).

// Lambda is a memoized λ measurement: the machine's diameter and sampled
// average distance (λ(M) is proportional to both on every Table 4 machine).
type Lambda struct {
	Diameter int
	AvgDist  float64
}

// betaKey is the canonical RunSpec key of a memoized β measurement. Seed
// stays out of the spec — the runner's base seed enters via diskKey — and
// Shards stays out by the Canonical contract, so every consumer (memo,
// disk cache, netemud coalescer) that asks for the same measurement lands
// on the same string.
func betaKey(f topology.Family, dim, size int, opts bandwidth.MeasureOptions) string {
	return runspec.Spec{
		Kind:        runspec.KindBeta,
		Machine:     &runspec.MachineSpec{Family: f.String(), Dim: dim, Size: size},
		LoadFactors: opts.LoadFactors,
		Trials:      opts.Trials,
		Strategy:    opts.Strategy.String(),
	}.Canonical()
}

// lambdaKey is the canonical RunSpec key of a memoized λ measurement.
func lambdaKey(f topology.Family, dim, size int) string {
	return runspec.Spec{
		Kind:    runspec.KindLambda,
		Machine: &runspec.MachineSpec{Family: f.String(), Dim: dim, Size: size},
	}.Canonical()
}

// betaEntry is the serializable part of a Measurement — what the disk
// cache stores. The Machine itself is rebuilt on the keyed stream on a hit,
// so hit and miss paths return identical Measurements.
type betaEntry struct {
	Dist       string          `json:"dist"`
	Beta       float64         `json:"beta"`
	RateByLoad map[int]float64 `json:"rate_by_load"`
}

// BetaFuture returns the (possibly already running) memoized measurement of
// the symmetric β of the Build-identified machine. The first call per key
// submits the job; later calls share its future. With a disk cache
// attached, the job consults it before running the simulator. Shards is
// deliberately absent from the key (in-memory and on disk): the sharded
// simulator's determinism contract makes the measured value identical at
// every shard count.
func (r *Runner) BetaFuture(f topology.Family, dim, size int, opts bandwidth.MeasureOptions) *Future[bandwidth.Measurement] {
	opts = opts.Canonical()
	key := betaKey(f, dim, size, opts)
	if v, ok := r.beta.Load(key); ok {
		return v.(*Future[bandwidth.Measurement])
	}
	fut := newFuture(r, key, func(rng *rand.Rand) bandwidth.Measurement {
		m, eng := r.artifactsFor(f, dim, size, opts.Strategy, rng)
		if r.disk != nil {
			var e betaEntry
			if r.disk.Load(r.diskKey(key), &e) {
				return bandwidth.Measurement{Machine: m, Dist: e.Dist, Beta: e.Beta, RateByLoad: e.RateByLoad}
			}
		}
		var meas bandwidth.Measurement
		if eng != nil {
			meas = bandwidth.MeasureBetaOn(eng, traffic.NewSymmetric(m.N()), opts, rng)
		} else {
			meas = bandwidth.MeasureSymmetricBeta(m, opts, rng)
		}
		if r.disk != nil {
			r.disk.Store(r.diskKey(key), betaEntry{Dist: meas.Dist, Beta: meas.Beta, RateByLoad: meas.RateByLoad})
		}
		return meas
	})
	if actual, loaded := r.beta.LoadOrStore(key, fut); loaded {
		return actual.(*Future[bandwidth.Measurement])
	}
	fut.submit(r)
	return fut
}

// Beta is BetaFuture + Wait.
func (r *Runner) Beta(f topology.Family, dim, size int, opts bandwidth.MeasureOptions) bandwidth.Measurement {
	return r.BetaFuture(f, dim, size, opts).Wait()
}

// LambdaFuture returns the memoized λ ingredients of the Build-identified
// machine. With a disk cache attached, the job consults it before
// measuring.
func (r *Runner) LambdaFuture(f topology.Family, dim, size int) *Future[Lambda] {
	key := lambdaKey(f, dim, size)
	if v, ok := r.lambda.Load(key); ok {
		return v.(*Future[Lambda])
	}
	fut := newFuture(r, key, func(rng *rand.Rand) Lambda {
		if r.disk != nil {
			var l Lambda
			if r.disk.Load(r.diskKey(key), &l) {
				return l
			}
		}
		m, _ := r.artifactsFor(f, dim, size, routing.Greedy, rng)
		diam, avg := bandwidth.MeasureLambda(m, rng)
		out := Lambda{Diameter: diam, AvgDist: avg}
		if r.disk != nil {
			r.disk.Store(r.diskKey(key), out)
		}
		return out
	})
	if actual, loaded := r.lambda.LoadOrStore(key, fut); loaded {
		return actual.(*Future[Lambda])
	}
	fut.submit(r)
	return fut
}

// Lambda is LambdaFuture + Wait.
func (r *Runner) Lambda(f topology.Family, dim, size int) Lambda {
	return r.LambdaFuture(f, dim, size).Wait()
}

// artifactsFor resolves the job's machine (and, when shareable, engine)
// through the runner's artifact cache. Deterministic families consume no
// rng draws in topology.Build, so substituting the cached machine and
// engine preserves the job's keyed draw sequence exactly — results stay
// byte-identical to a cold build, just without rebuilding the machine
// and BFS distance fields for every section that measures the same
// host. Randomized families (Expander, Multibutterfly) must keep
// drawing their construction from the job stream, so they bypass the
// cache, as does any build the cache rejects.
func (r *Runner) artifactsFor(f topology.Family, dim, size int, strategy routing.Strategy, rng *rand.Rand) (*topology.Machine, *routing.Engine) {
	if r.artifacts == nil || topology.RandomizedFamily(f) {
		return topology.Build(f, dim, size, rng), nil
	}
	ms := runspec.MachineSpec{Family: f.String(), Dim: dim, Size: size}
	m, err := r.artifacts.Machine(ms)
	if err != nil {
		return topology.Build(f, dim, size, rng), nil
	}
	eng, err := r.artifacts.Engine(ms, strategy)
	if err != nil {
		return m, nil
	}
	return m, eng
}
