// Package experiment is a deterministic concurrent job orchestrator for the
// measurement suites. Every job — a β sweep point, a λ measurement, an
// emulation bound check, a fault-tolerance trial — is identified by a stable
// key string and draws its randomness from a measure.SeedPlan stream
// addressed by that key, never from a shared RNG. Results therefore depend
// only on the base seed and the key, not on worker count, submission order,
// or goroutine scheduling: a suite run at -workers 1 and -workers 8 produces
// byte-identical output. This is the same contract bandwidth.SweepBetaParallel
// honors, generalized from one sweep to arbitrary job graphs.
//
// The runner also memoizes the expensive shared measurements (operational β
// and λ of a Build-identified machine) keyed by (family, dim, size,
// canonical MeasureOptions), so report sections and the crossover tool stop
// recomputing the same host-machine bandwidths.
package experiment

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/measure"
	"repro/internal/runspec"
)

// Runner executes keyed jobs on a bounded worker pool. The zero value is
// not usable; construct with New.
type Runner struct {
	plan      measure.SeedPlan
	seed      int64
	workers   int
	sem       chan struct{}
	beta      sync.Map // string -> *Future[bandwidth.Measurement]
	lambda    sync.Map // string -> *Future[Lambda]
	disk      *DiskCache
	artifacts *runspec.ArtifactCache
	jobs      atomic.Int64
}

// New returns a runner rooted at the given base seed. workers caps the
// number of jobs executing concurrently; workers < 1 means GOMAXPROCS.
func New(seed int64, workers int) *Runner {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		plan:      measure.NewSeedPlan(seed),
		seed:      seed,
		workers:   workers,
		sem:       make(chan struct{}, workers),
		artifacts: runspec.NewArtifactCache(0, 0),
	}
}

// Workers returns the concurrency cap.
func (r *Runner) Workers() int { return r.workers }

// Jobs returns how many jobs have been submitted so far.
func (r *Runner) Jobs() int64 { return r.jobs.Load() }

// RNG returns the job stream for a key. It depends only on the runner's
// base seed and the key — two runners with the same seed hand out identical
// streams for identical keys regardless of call order.
func (r *Runner) RNG(key string) *rand.Rand {
	return r.plan.RNG(measure.KeyString(key))
}

// Seed returns a derived int64 seed for a key, for APIs that take seeds
// rather than *rand.Rand.
func (r *Runner) Seed(key string) int64 {
	return r.plan.Fork(measure.KeyString(key)).Seed()
}

// Future is the handle to a submitted job. Exactly one goroutine ever runs
// the job body; Wait blocks until the value is ready.
type Future[T any] struct {
	fn      func() T
	claimed atomic.Bool
	done    chan struct{}
	val     T
}

// Go submits fn as a job. fn receives a fresh RNG on the key's stream; the
// returned value depends only on (base seed, key, fn), never on scheduling.
//
// Deadlock safety: a job may Wait on futures of other jobs. If the awaited
// job has not started yet, Wait claims it and runs it inline on the waiting
// goroutine instead of blocking on a pool slot, so nested job graphs cannot
// starve the pool.
func Go[T any](r *Runner, key string, fn func(rng *rand.Rand) T) *Future[T] {
	f := newFuture(r, key, fn)
	f.submit(r)
	return f
}

// GoUnpooled runs fn immediately on its own goroutine, outside the worker
// cap. It is meant for cheap coordinator jobs that fan out pooled leaf jobs
// and spend their life blocked in Wait — counting those against the cap
// would let blocked coordinators starve the leaves doing the actual work.
// The determinism contract is the same as Go's.
func GoUnpooled[T any](r *Runner, key string, fn func(rng *rand.Rand) T) *Future[T] {
	f := newFuture(r, key, fn)
	r.jobs.Add(1)
	go f.tryRun()
	return f
}

func newFuture[T any](r *Runner, key string, fn func(rng *rand.Rand) T) *Future[T] {
	rng := r.RNG(key)
	return &Future[T]{
		fn:   func() T { return fn(rng) },
		done: make(chan struct{}),
	}
}

func (f *Future[T]) submit(r *Runner) {
	r.jobs.Add(1)
	go func() {
		r.sem <- struct{}{}
		defer func() { <-r.sem }()
		f.tryRun()
	}()
}

// tryRun executes the job body if no one has claimed it yet.
func (f *Future[T]) tryRun() {
	if f.claimed.CompareAndSwap(false, true) {
		f.val = f.fn()
		close(f.done)
	}
}

// Wait returns the job's value, running it inline if it has not started.
func (f *Future[T]) Wait() T {
	f.tryRun()
	<-f.done
	return f.val
}

// Collect waits on a slice of futures and returns their values in order.
func Collect[T any](fs []*Future[T]) []T {
	out := make([]T, len(fs))
	for i, f := range fs {
		out[i] = f.Wait()
	}
	return out
}
