package api

import (
	"strings"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	b := Envelope(CodeQueueFull, "server overloaded")
	if !strings.HasSuffix(string(b), "\n") {
		t.Fatal("envelope not newline-terminated")
	}
	code, msg, ok := ParseError(b)
	if !ok || code != CodeQueueFull || msg != "server overloaded" {
		t.Fatalf("round trip: code=%q msg=%q ok=%v", code, msg, ok)
	}
}

func TestParseErrorRejectsNonEnvelopes(t *testing.T) {
	for _, body := range []string{
		`{"kind":"beta","beta":1.5}`,     // a result document
		`{"error":"legacy flat string"}`, // the pre-envelope shape
		`not json at all`,
		``,
		`{"error":{"message":"no code"}}`,
	} {
		if _, _, ok := ParseError([]byte(body)); ok {
			t.Errorf("ParseError accepted %q", body)
		}
	}
}

func TestCodeForStatusCoversTheTaxonomy(t *testing.T) {
	cases := map[int]string{
		400: CodeBadSpec, 404: CodeNotFound, 429: CodeQueueFull,
		503: CodeDraining, 504: CodeDeadline, 500: CodeInternal, 502: CodeInternal,
	}
	for status, want := range cases {
		if got := CodeForStatus(status); got != want {
			t.Errorf("CodeForStatus(%d) = %q, want %q", status, got, want)
		}
	}
}

func TestRetryableMatchesClusterSpillRules(t *testing.T) {
	for code, want := range map[string]bool{
		CodeQueueFull: true, CodeDraining: true,
		CodeBadSpec: false, CodeDeadline: false, CodeNotFound: false, CodeInternal: false,
	} {
		if Retryable(code) != want {
			t.Errorf("Retryable(%q) = %v, want %v", code, !want, want)
		}
	}
}
