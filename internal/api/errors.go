// Package api defines the wire-level error envelope shared by every
// /v1/* endpoint, the cluster dispatcher, and the chaos proxy. All
// error responses carry one structured document:
//
//	{"error": {"code": "queue_full", "message": "server overloaded: ..."}}
//
// The code is the machine-readable contract — clients and the cluster
// retry taxonomy key on it, never on message text or status-string
// matching. The message is for humans and may change freely.
package api

import "encoding/json"

// The stable error codes. These are API surface: removing or renaming
// one is a breaking change.
const (
	// CodeBadSpec: the request body failed to parse or the RunSpec
	// failed validation. Deterministic — every worker answers the same
	// way, so it is never retried.
	CodeBadSpec = "bad_spec"
	// CodeQueueFull: the admission queue rejected the work (HTTP 429).
	// Retryable — another worker may have capacity.
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down (HTTP 503). Retryable —
	// ring successors are still serving.
	CodeDraining = "draining"
	// CodeDeadline: the client's deadline expired before the result was
	// ready (HTTP 504). Not retried: the budget is already spent.
	CodeDeadline = "deadline"
	// CodeNotFound: the named resource does not exist (HTTP 404).
	CodeNotFound = "not_found"
	// CodeInternal: a panic, encoding failure, or transport-level break
	// (HTTP 5xx). Deterministic failures are not retried; transport 502s
	// are handled by status, see cluster retry rules.
	CodeInternal = "internal"
)

// ErrorDetail is the inner error object.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorBody is the full envelope document.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// Envelope renders the wire bytes for one error, newline-terminated
// like every other netemud response body.
func Envelope(code, msg string) []byte {
	b, _ := json.Marshal(ErrorBody{Error: ErrorDetail{Code: code, Message: msg}})
	return append(b, '\n')
}

// ParseError extracts the code and message from an envelope body.
// ok is false when the body is not an envelope (a result document, a
// plain-text proxy error, an empty body).
func ParseError(body []byte) (code, msg string, ok bool) {
	var e ErrorBody
	if json.Unmarshal(body, &e) != nil || e.Error.Code == "" {
		return "", "", false
	}
	return e.Error.Code, e.Error.Message, true
}

// CodeForStatus maps an HTTP status to the code a netemud server would
// have used — the fallback when replaying an error from a peer that
// did not (or could not) send an envelope.
func CodeForStatus(status int) string {
	switch status {
	case 400:
		return CodeBadSpec
	case 404:
		return CodeNotFound
	case 429:
		return CodeQueueFull
	case 503:
		return CodeDraining
	case 504:
		return CodeDeadline
	default:
		return CodeInternal
	}
}

// Retryable reports whether an error code means "this worker can't
// take the request right now, a ring successor might": the spill
// decision the cluster dispatcher keys on. bad_spec, deadline,
// not_found, and internal are deterministic or budget-spent — every
// worker would answer identically, so they are final.
func Retryable(code string) bool {
	return code == CodeQueueFull || code == CodeDraining
}
