package netemu

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestNewMachineAllFamilies(t *testing.T) {
	for _, f := range Families() {
		dim := 0
		if f.Dimensioned() {
			dim = 2
		}
		m := NewMachine(f, dim, 64, 1)
		if m == nil || m.N() < 8 {
			t.Fatalf("NewMachine(%v) = %v", f, m)
		}
	}
}

func TestNamedConstructors(t *testing.T) {
	if NewMesh(2, 4).N() != 16 {
		t.Fatal("NewMesh wrong")
	}
	if NewDeBruijn(5).N() != 32 {
		t.Fatal("NewDeBruijn wrong")
	}
	if NewExpander(32, 7).N() != 32 {
		t.Fatal("NewExpander wrong")
	}
	if NewMultibutterfly(3, 7).N() != 32 {
		t.Fatal("NewMultibutterfly wrong")
	}
}

func TestAnalyticBeta(t *testing.T) {
	a, err := AnalyticBeta(DeBruijn, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Beta.String() != "n lg^{-1} n" {
		t.Fatalf("beta = %q", a.Beta.String())
	}
}

func TestMaxHostSizeHeadline(t *testing.T) {
	s, err := MaxHostSize(Spec{Family: DeBruijn}, Spec{Family: Mesh, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "lg^{2} |G|") {
		t.Fatalf("MaxHostSize = %q, want O(lg^2 |G|)", s)
	}
}

func TestMeasureBetaFacade(t *testing.T) {
	m := NewMesh(2, 6)
	meas := MeasureBeta(m, MeasureOptions{LoadFactors: []int{2, 4}, Trials: 1}, 42)
	if meas.Beta <= 0 {
		t.Fatal("no rate")
	}
}

func TestGraphBetaFacade(t *testing.T) {
	if GraphBeta(NewMesh(2, 5), 4, 42) <= 0 {
		t.Fatal("no graph beta")
	}
}

func TestMeasurePermutation(t *testing.T) {
	st := MeasurePermutation(NewButterfly(3), 2, 42)
	if st.Messages != 64 || st.Ticks <= 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEmulateFacade(t *testing.T) {
	res := Emulate(NewDeBruijn(5), NewMesh(2, 4), 2, 42)
	if res.Slowdown < res.LoadBound {
		t.Fatalf("slowdown %.1f below load %.1f", res.Slowdown, res.LoadBound)
	}
	circ := EmulateCircuit(NewRing(16), NewRing(4), 2, 2, 42)
	if circ.Inefficiency < 1.5 {
		t.Fatalf("redundant inefficiency = %v", circ.Inefficiency)
	}
}

func TestVerifyBoundFacade(t *testing.T) {
	check, err := VerifyBound(NewDeBruijn(5), NewMesh(2, 4), 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	if check.Ratio <= 0 {
		t.Fatalf("check %+v", check)
	}
}

func TestTablesFacade(t *testing.T) {
	if len(Table1(2, 2)) == 0 || len(Table2(2, 2)) == 0 || len(Table3(2)) == 0 {
		t.Fatal("empty tables")
	}
	var sb strings.Builder
	if err := WriteTable(&sb, "T1", Table1(2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := WriteTable4(&sb, 2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Mesh^2") {
		t.Fatal("missing table content")
	}
}

func TestAuditBottleneckFacade(t *testing.T) {
	rep := AuditBottleneck(NewMesh(2, 5), 2, MeasureOptions{LoadFactors: []int{4}, Trials: 1}, 42)
	if len(rep.Trials) != 2 {
		t.Fatalf("trials %d", len(rep.Trials))
	}
}

func TestDeterminismWithSeed(t *testing.T) {
	a := Emulate(NewDeBruijn(5), NewMesh(2, 4), 2, 7)
	b := Emulate(NewDeBruijn(5), NewMesh(2, 4), 2, 7)
	if a.HostTicks != b.HostTicks {
		t.Fatalf("non-deterministic: %d vs %d", a.HostTicks, b.HostTicks)
	}
}

func TestProgramFacade(t *testing.T) {
	guest := NewDeBruijn(5)
	p := NewFloodMax()
	native := RunProgram(p, guest, 5)
	res := RunProgramEmulated(p, guest, NewMesh(2, 4), 5, 3)
	for v := range native {
		if native[v] != res.States[v] {
			t.Fatalf("emulated state %d differs", v)
		}
	}
	if res.Slowdown <= 0 {
		t.Fatal("no slowdown recorded")
	}
	if _, err := ProgramByName("floodmax"); err != nil {
		t.Fatal(err)
	}
	if _, err := ProgramByName("bogus"); err == nil {
		t.Fatal("bogus program accepted")
	}
	if NewSumDiffusion().Name() != "sumdiffusion" || NewParityWave().Name() != "paritywave" {
		t.Fatal("program names wrong")
	}
}

func TestPipelinedFacade(t *testing.T) {
	seq := Emulate(NewDeBruijn(5), NewMesh(2, 4), 2, 5)
	pipe := EmulatePipelined(NewDeBruijn(5), NewMesh(2, 4), 2, 5)
	if pipe.HostTicks > seq.HostTicks {
		t.Fatalf("pipelined %d > sequential %d", pipe.HostTicks, seq.HostTicks)
	}
}

func TestSteadyBetaFacade(t *testing.T) {
	if beta := MeasureSteadyBeta(NewMesh(2, 5), 200, 6, 5); beta <= 0 {
		t.Fatalf("steady beta %v", beta)
	}
}

func TestFaultFacade(t *testing.T) {
	m := NewMultibutterfly(4, 9)
	d := DegradeEdges(m, 0.2, 9)
	if d.Graph.E() >= m.Graph.E() {
		t.Fatal("no degradation")
	}
	if f := SurvivalFraction(d); f <= 0 || f > 1 {
		t.Fatalf("survival %v", f)
	}
	s := Survivor(d)
	if !s.Graph.Connected() {
		t.Fatal("survivor disconnected")
	}
}

func TestMappingFacade(t *testing.T) {
	guest := NewDeBruijn(5)
	host := NewTree(3)
	assign := MappedContraction(guest, host, 11)
	if len(assign) != guest.N() {
		t.Fatalf("assignment covers %d", len(assign))
	}
	res := EmulateWithAssignment(guest, host, 2, assign, 11)
	if res.Slowdown < res.LoadBound {
		t.Fatalf("slowdown %v below load %v", res.Slowdown, res.LoadBound)
	}
}

func TestPatternFacade(t *testing.T) {
	p := NewFFTPattern(4)
	h := NewMesh(2, 4)
	bound := PatternBound(p, h, 1)
	ticks := MeasurePattern(p, h, 1)
	if float64(ticks) < bound {
		t.Fatalf("measured %d below bound %.1f", ticks, bound)
	}
	if NewBitonicPattern(3).Messages() <= NewFFTPattern(3).Messages() {
		t.Fatal("bitonic should carry more messages than fft")
	}
	if NewPrefixPattern(3).Endpoints() != 8 || NewAllToAllPattern(8).Endpoints() != 8 {
		t.Fatal("pattern endpoints wrong")
	}
}

func TestOpenLoopFacade(t *testing.T) {
	res := MeasureOpenLoop(NewMesh(2, 5), 2, 200, 4)
	if res.Throughput <= 0 || res.P95Latency < 1 {
		t.Fatalf("open loop result %+v", res)
	}
}

func TestLocalityFacadeBeatsSymmetricOnArray(t *testing.T) {
	m := NewLinearArray(48)
	opts := MeasureOptions{LoadFactors: []int{2, 4}, Trials: 1}
	sym := MeasureBeta(m, opts, 6).Beta
	local := MeasureBetaUnder(m, NewLocalityTraffic(m, 0.25), opts, 6).Beta
	if local <= sym {
		t.Fatalf("local rate %.1f should exceed symmetric %.1f on an array", local, sym)
	}
}

func TestEmulateOnFaultedMeshSurvivor(t *testing.T) {
	// Regression for the stale-geometry bug: a degraded mesh survivor used
	// to advertise its parent's Side^Dim layout, making the contraction map
	// place guest processors on hosts that no longer exist.
	rng := rand.New(rand.NewSource(21))
	mesh := NewMesh(2, 8)
	degraded, failed := topology.DeleteRandomProcessors(mesh, 12, rng)
	survivor := topology.SurvivingSubmachine(degraded, failed)
	if survivor.N() >= mesh.N() {
		t.Fatalf("survivor kept %d processors", survivor.N())
	}
	res := Emulate(NewMesh(2, 8), survivor, 3, 21)
	if res.Slowdown <= 0 {
		t.Fatalf("slowdown %v", res.Slowdown)
	}
	back := Emulate(survivor, NewMesh(2, 4), 3, 22)
	if back.Slowdown <= 0 {
		t.Fatalf("reverse slowdown %v", back.Slowdown)
	}
}
