package netemu

// One benchmark per table and figure of the paper. The benches both time
// the machinery and report the reproduced quantities as custom metrics, so
// `go test -bench=. -benchmem` regenerates the paper's evaluation:
//
//	BenchmarkTable4Measured/*   — measured β per machine (msgs/tick), the
//	                              operational reproduction of Table 4
//	BenchmarkTable4Exponent/*   — fitted growth exponent of β across sizes
//	BenchmarkTable1,2,3         — symbolic max-host-size tables
//	BenchmarkFigure1            — the load/bandwidth crossover (max
//	                              efficient host size for the headline pair)
//	BenchmarkDeBruijnOnMesh     — measured emulation slowdown vs the bound
//	BenchmarkTheorem6           — operational vs graph-theoretic β ratio
//	BenchmarkBottleneckAudit    — worst quasi/symmetric rate ratio (hosts
//	                              must be bottleneck-free)

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/bandwidth"
)

// benchOpts keeps bench runtimes moderate while staying in the regression
// estimator's stable regime.
var benchOpts = MeasureOptions{LoadFactors: []int{2, 4, 8}, Trials: 2}

// table4Machines are the concrete instances measured for Table 4.
func table4Machines() []*Machine {
	return []*Machine{
		NewLinearArray(128),
		NewGlobalBus(128),
		NewTree(7),
		NewWeakPPN(128),
		NewXTree(7),
		NewMesh(2, 12),
		NewMesh(3, 5),
		NewTorus(2, 12),
		NewXGrid(2, 12),
		NewMeshOfTrees(2, 8),
		NewMultigrid(2, 8),
		NewPyramid(2, 8),
		NewButterfly(5),
		NewWrappedButterfly(5),
		NewCubeConnectedCycles(5),
		NewShuffleExchange(7),
		NewDeBruijn(7),
		NewWeakHypercube(7),
		NewMultibutterfly(5, 1),
		NewExpander(128, 1),
	}
}

// BenchmarkTable4Measured reproduces Table 4 operationally: the measured
// bandwidth of each machine is reported as the "beta" metric.
func BenchmarkTable4Measured(b *testing.B) {
	for _, m := range table4Machines() {
		b.Run(m.Name, func(b *testing.B) {
			var beta float64
			for i := 0; i < b.N; i++ {
				beta = MeasureBeta(m, benchOpts, int64(i)).Beta
			}
			b.ReportMetric(beta, "beta")
			b.ReportMetric(beta/float64(m.N()), "beta/node")
		})
	}
}

// BenchmarkTable4Exponent fits the growth exponent of β across a size
// sweep per family and reports it as the "exp" metric, to compare against
// the paper's Θ-forms (mesh² → 0.5, butterfly-class → ~1 minus log, linear
// array → 0).
func BenchmarkTable4Exponent(b *testing.B) {
	cases := []struct {
		family Family
		dim    int
		sizes  []int
	}{
		{LinearArray, 0, []int{32, 64, 128, 256}},
		{Tree, 0, []int{31, 63, 127, 255}},
		{Mesh, 2, []int{64, 144, 256, 576}},
		{Mesh, 3, []int{64, 216, 512}},
		{DeBruijn, 0, []int{64, 128, 256, 512}},
		{Butterfly, 0, []int{64, 192, 448}},
		{XTree, 0, []int{31, 63, 127, 255}},
	}
	for _, c := range cases {
		name := c.family.String()
		if c.family.Dimensioned() {
			name = fmt.Sprintf("%v_%dd", c.family, c.dim)
		}
		b.Run(name, func(b *testing.B) {
			var a float64
			for i := 0; i < b.N; i++ {
				points := sweep(c.family, c.dim, c.sizes, int64(i))
				a, _, _, _ = bandwidth.FitGrowth(points)
			}
			b.ReportMetric(a, "exp")
		})
	}
}

func sweep(f Family, dim int, sizes []int, seed int64) []bandwidth.SweepPoint {
	var pts []bandwidth.SweepPoint
	for _, size := range sizes {
		m := NewMachine(f, dim, size, seed)
		meas := MeasureBeta(m, benchOpts, seed+int64(size))
		pts = append(pts, bandwidth.SweepPoint{N: m.N(), Beta: meas.Beta})
	}
	return pts
}

// BenchmarkTable1 regenerates Table 1 (mesh/torus/X-grid guests).
func BenchmarkTable1(b *testing.B) {
	var rows []TableRow
	for i := 0; i < b.N; i++ {
		rows = Table1(2, 2)
	}
	b.ReportMetric(float64(len(rows)), "rows")
	if err := WriteTable(io.Discard, "Table 1", rows); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable2 regenerates Table 2 (mesh-of-trees/multigrid/pyramid
// guests).
func BenchmarkTable2(b *testing.B) {
	var rows []TableRow
	for i := 0; i < b.N; i++ {
		rows = Table2(2, 2)
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkTable3 regenerates Table 3 (butterfly-class guests).
func BenchmarkTable3(b *testing.B) {
	var rows []TableRow
	for i := 0; i < b.N; i++ {
		rows = Table3(2)
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// BenchmarkFigure1 computes the Figure 1 crossover for the headline pair
// (de Bruijn guest, 2-d mesh host) at n = 4096 and reports the maximum
// efficient host size — analytically lg² n = 144 — and the slowdown there.
func BenchmarkFigure1(b *testing.B) {
	bound, err := SlowdownBound(Spec{Family: DeBruijn}, Spec{Family: Mesh, Dim: 2})
	if err != nil {
		b.Fatal(err)
	}
	var m, slow float64
	for i := 0; i < b.N; i++ {
		m, slow = bound.CrossoverPoint(4096)
	}
	b.ReportMetric(m, "maxhost")
	b.ReportMetric(slow, "slowdown")
}

// BenchmarkDeBruijnOnMesh measures the §1 running example: the slowdown of
// a direct emulation of a 256-node de Bruijn on mesh hosts at, below, and
// above the lg² n crossover. Metrics: measured slowdown and the
// measured/predicted ratio (must stay ≥ Ω(1)).
func BenchmarkDeBruijnOnMesh(b *testing.B) {
	guest := NewDeBruijn(8)
	for _, side := range []int{4, 8, 16} {
		host := NewMesh(2, side)
		b.Run(fmt.Sprintf("host%d", host.N()), func(b *testing.B) {
			var check BoundCheck
			var err error
			for i := 0; i < b.N; i++ {
				check, err = VerifyBound(guest, host, 3, int64(i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(check.Measured, "slowdown")
			b.ReportMetric(check.Ratio, "meas/bound")
		})
	}
}

// BenchmarkTheorem6 checks the equivalence of the operational and
// graph-theoretic bandwidth definitions per machine: the ratio metric
// should sit within a constant band around 1.
func BenchmarkTheorem6(b *testing.B) {
	machines := []*Machine{
		NewMesh(2, 8),
		NewTree(6),
		NewDeBruijn(6),
		NewRing(64),
	}
	for _, m := range machines {
		b.Run(m.Name, func(b *testing.B) {
			var ratio float64
			for i := 0; i < b.N; i++ {
				op := MeasureBeta(m, benchOpts, int64(i)).Beta
				gt := GraphBeta(m, 6, int64(i))
				ratio = op / gt
			}
			b.ReportMetric(ratio, "op/graph")
		})
	}
}

// BenchmarkBottleneckAudit reports the worst quasi-symmetric/symmetric
// rate ratio per host machine — the paper's bottleneck-freeness condition
// demands it stay O(1).
func BenchmarkBottleneckAudit(b *testing.B) {
	machines := []*Machine{
		NewMesh(2, 8),
		NewTree(6),
		NewXTree(6),
		NewLinearArray(64),
	}
	for _, m := range machines {
		b.Run(m.Name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				worst = AuditBottleneck(m, 2, benchOpts, int64(i)).WorstRatio
			}
			b.ReportMetric(worst, "worstratio")
		})
	}
}

// BenchmarkEmulationMatrix sweeps representative guest/host family pairs
// and reports the measured-slowdown-to-bound ratio for each, the aggregate
// check that the Efficient Emulation Theorem's direction holds everywhere.
func BenchmarkEmulationMatrix(b *testing.B) {
	pairs := []struct {
		name        string
		guest, host *Machine
	}{
		{"Mesh2-on-LinearArray", NewMesh(2, 8), NewLinearArray(16)},
		{"Mesh2-on-Tree", NewMesh(2, 8), NewTree(4)},
		{"Mesh2-on-Mesh2", NewMesh(2, 8), NewMesh(2, 4)},
		{"DeBruijn-on-Mesh2", NewDeBruijn(6), NewMesh(2, 4)},
		{"DeBruijn-on-XTree", NewDeBruijn(6), NewXTree(4)},
		{"Butterfly-on-Mesh2", NewButterfly(4), NewMesh(2, 4)},
		{"Mesh2-on-Butterfly", NewMesh(2, 8), NewButterfly(4)},
		{"CCC-on-LinearArray", NewCubeConnectedCycles(4), NewLinearArray(16)},
		{"XTree-on-Tree", NewXTree(6), NewTree(4)},
		{"XTree-on-LinearArray", NewXTree(6), NewLinearArray(16)},
	}
	for _, p := range pairs {
		b.Run(p.name, func(b *testing.B) {
			var check BoundCheck
			var err error
			for i := 0; i < b.N; i++ {
				check, err = VerifyBound(p.guest, p.host, 2, int64(i))
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(check.Measured, "slowdown")
			b.ReportMetric(check.Ratio, "meas/bound")
		})
	}
}

// BenchmarkRouting times the raw packet simulator per machine class —
// the substrate all measurements run on.
func BenchmarkRouting(b *testing.B) {
	machines := []*Machine{
		NewMesh(2, 16),
		NewDeBruijn(8),
		NewButterfly(6),
	}
	for _, m := range machines {
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MeasurePermutation(m, 4, int64(i))
			}
		})
	}
}

// BenchmarkWorkloadEmulation runs the flood-max leader election under
// emulation on hosts of decreasing power — a real program with a
// correctness oracle (states must match the native run), so the slowdown
// metric is guaranteed to be pure communication/load cost.
func BenchmarkWorkloadEmulation(b *testing.B) {
	guest := NewDeBruijn(7)
	p := NewFloodMax()
	native := RunProgram(p, guest, 7)
	hosts := []*Machine{
		NewDeBruijn(7),
		NewMesh(2, 11),
		NewMesh(2, 6),
		NewLinearArray(36),
	}
	for _, host := range hosts {
		b.Run(host.Name, func(b *testing.B) {
			var res ProgramResult
			for i := 0; i < b.N; i++ {
				res = RunProgramEmulated(p, guest, host, 7, int64(i))
			}
			for v := range native {
				if res.States[v] != native[v] {
					b.Fatalf("emulation diverged at processor %d", v)
				}
			}
			b.ReportMetric(res.Slowdown, "slowdown")
		})
	}
}

// BenchmarkTable4Lambda validates Table 4's λ column: the fitted growth
// exponent of the measured diameter across a size sweep — 1 for the linear
// array, 1/k for k-dimensional meshes, ~0 (log) for the tree-like and
// hypercubic families.
func BenchmarkTable4Lambda(b *testing.B) {
	cases := []struct {
		family Family
		dim    int
		sizes  []int
	}{
		{LinearArray, 0, []int{32, 64, 128, 256}},
		{Mesh, 2, []int{64, 144, 256, 576}},
		{Mesh, 3, []int{64, 216, 512}},
		{Tree, 0, []int{31, 63, 127, 255}},
		{DeBruijn, 0, []int{64, 128, 256, 512}},
		{Pyramid, 2, []int{21, 85, 341}},
	}
	for _, c := range cases {
		name := c.family.String()
		if c.family.Dimensioned() {
			name = fmt.Sprintf("%v_%dd", c.family, c.dim)
		}
		b.Run(name, func(b *testing.B) {
			var a float64
			for i := 0; i < b.N; i++ {
				var pts []bandwidth.SweepPoint
				for _, size := range c.sizes {
					m := NewMachine(c.family, c.dim, size, int64(i))
					diam, err := m.Graph.Diameter()
					if err != nil {
						b.Fatal(err)
					}
					pts = append(pts, bandwidth.SweepPoint{N: m.N(), Beta: float64(diam)})
				}
				a, _, _, _ = bandwidth.FitGrowth(pts)
			}
			b.ReportMetric(a, "exp")
		})
	}
}

// BenchmarkAlgorithmPatterns reproduces the conclusion's extension:
// Lemma 8 time bounds and measured delivery times for classic algorithm
// patterns on equal-size hosts.
func BenchmarkAlgorithmPatterns(b *testing.B) {
	pats := []Pattern{
		NewFFTPattern(6),
		NewBitonicPattern(6),
		NewPrefixPattern(6),
		NewAllToAllPattern(64),
	}
	hosts := []*Machine{
		NewDeBruijn(6),
		NewMesh(2, 8),
		NewLinearArray(64),
	}
	for _, p := range pats {
		for _, h := range hosts {
			b.Run(p.Name+"-on-"+h.Name, func(b *testing.B) {
				var ticks int
				var bound float64
				for i := 0; i < b.N; i++ {
					bound = PatternBound(p, h, int64(i))
					ticks = MeasurePattern(p, h, int64(i))
				}
				b.ReportMetric(bound, "bound")
				b.ReportMetric(float64(ticks), "ticks")
			})
		}
	}
}

// BenchmarkLatencyVsLoad traces the classic open-loop latency curve: mean
// delivery latency at increasing fractions of the saturation rate. Latency
// stays near the unloaded distance until ~75% load, then climbs steeply —
// the queueing-theoretic face of β as a capacity.
func BenchmarkLatencyVsLoad(b *testing.B) {
	m := NewMesh(2, 8)
	sat := MeasureSteadyBeta(m, 300, 8, 1)
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.9} {
		b.Run(fmt.Sprintf("load%.0f%%", frac*100), func(b *testing.B) {
			var mean float64
			var p95 int
			for i := 0; i < b.N; i++ {
				res := openLoopAt(m, sat*frac, int64(i))
				mean = res.MeanLatency
				p95 = res.P95Latency
			}
			b.ReportMetric(mean, "latency")
			b.ReportMetric(float64(p95), "p95")
		})
	}
}

func openLoopAt(m *Machine, rate float64, seed int64) OpenLoopResult {
	if rate < 0.1 {
		rate = 0.1
	}
	return MeasureOpenLoop(m, rate, 400, seed)
}
