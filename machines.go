package netemu

import (
	"math/rand"

	"repro/internal/topology"
)

// Machine is a concrete network-machine instance: a multigraph of
// processors (and, for bus-like machines, switch vertices) plus forwarding
// capacities. See the topology package for the structural details.
type Machine = topology.Machine

// Family identifies a machine family from the paper.
type Family = topology.Family

// The machine families the paper analyses.
const (
	LinearArray         = topology.LinearArrayFamily
	Ring                = topology.RingFamily
	GlobalBus           = topology.GlobalBusFamily
	Tree                = topology.TreeFamily
	WeakPPN             = topology.WeakPPNFamily
	XTree               = topology.XTreeFamily
	Mesh                = topology.MeshFamily
	Torus               = topology.TorusFamily
	XGrid               = topology.XGridFamily
	MeshOfTrees         = topology.MeshOfTreesFamily
	Multigrid           = topology.MultigridFamily
	Pyramid             = topology.PyramidFamily
	Butterfly           = topology.ButterflyFamily
	WrappedButterfly    = topology.WrappedButterflyFamily
	CubeConnectedCycles = topology.CubeConnectedCyclesFamily
	ShuffleExchange     = topology.ShuffleExchangeFamily
	DeBruijn            = topology.DeBruijnFamily
	WeakHypercube       = topology.WeakHypercubeFamily
	Multibutterfly      = topology.MultibutterflyFamily
	Expander            = topology.ExpanderFamily
)

// Families lists every family in a stable order.
func Families() []Family { return topology.Families() }

// NewMachine builds an instance of the family with processor count as
// close as possible to approxN. dim is required for the dimensioned
// families (Mesh, Torus, XGrid, MeshOfTrees, Multigrid, Pyramid) and
// ignored otherwise. seed drives the randomized families (Expander,
// Multibutterfly) and is ignored otherwise.
func NewMachine(f Family, dim, approxN int, seed int64) *Machine {
	return topology.Build(f, dim, approxN, rand.New(rand.NewSource(seed)))
}

// Exact constructors for callers that need precise structural parameters
// rather than approximate sizes.
var (
	// NewLinearArray returns the n-processor linear array.
	NewLinearArray = topology.LinearArray
	// NewRing returns the n-processor ring.
	NewRing = topology.Ring
	// NewGlobalBus returns n processors on a shared serializing bus.
	NewGlobalBus = topology.GlobalBus
	// NewTree returns the complete binary tree with the given levels.
	NewTree = topology.Tree
	// NewXTree returns the X-tree (tree plus within-level edges).
	NewXTree = topology.XTree
	// NewWeakPPN returns the weak parallel prefix network over n leaves.
	NewWeakPPN = topology.WeakPPN
	// NewMesh returns the dim-dimensional mesh with the given side.
	NewMesh = topology.Mesh
	// NewTorus returns the dim-dimensional torus with the given side.
	NewTorus = topology.Torus
	// NewXGrid returns the mesh plus all 2-face diagonals.
	NewXGrid = topology.XGrid
	// NewMeshOfTrees returns the dim-dimensional mesh of trees.
	NewMeshOfTrees = topology.MeshOfTrees
	// NewMultigrid returns the dim-dimensional multigrid.
	NewMultigrid = topology.Multigrid
	// NewPyramid returns the dim-dimensional pyramid.
	NewPyramid = topology.Pyramid
	// NewButterfly returns the order-d butterfly.
	NewButterfly = topology.Butterfly
	// NewWrappedButterfly returns the order-d wrapped butterfly.
	NewWrappedButterfly = topology.WrappedButterfly
	// NewCubeConnectedCycles returns the order-d CCC.
	NewCubeConnectedCycles = topology.CubeConnectedCycles
	// NewShuffleExchange returns the order-d shuffle-exchange graph.
	NewShuffleExchange = topology.ShuffleExchange
	// NewDeBruijn returns the order-d de Bruijn graph.
	NewDeBruijn = topology.DeBruijn
	// NewWeakHypercube returns the one-port hypercube of the given order.
	NewWeakHypercube = topology.WeakHypercube
	// NewStrongHypercube returns the all-port hypercube — not a paper
	// machine (degree grows), but the contrast for the weak model.
	NewStrongHypercube = topology.StrongHypercube
)

// NewExpander returns a random 4-regular expander on n vertices.
func NewExpander(n int, seed int64) *Machine {
	return topology.Expander(n, 4, rand.New(rand.NewSource(seed)))
}

// NewMultibutterfly returns an order-d multibutterfly with 2-way random
// splitters.
func NewMultibutterfly(order int, seed int64) *Machine {
	return topology.Multibutterfly(order, 2, rand.New(rand.NewSource(seed)))
}

// DegradeEdges returns a copy of m with each wire removed independently
// with probability frac — fault injection for robustness experiments.
// The result may be disconnected; use Survivor to extract the largest
// component.
func DegradeEdges(m *Machine, frac float64, seed int64) *Machine {
	return topology.DeleteRandomEdges(m, frac, rand.New(rand.NewSource(seed)))
}

// Survivor extracts the largest connected component of a degraded machine
// as a standalone machine, renumbered with processors first.
func Survivor(m *Machine) *Machine {
	return topology.SurvivingSubmachine(m, nil)
}

// SurvivalFraction reports the fraction of processors in the largest
// component of a (possibly degraded) machine.
func SurvivalFraction(m *Machine) float64 {
	return topology.LargestComponentFraction(m, nil)
}
