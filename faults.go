package netemu

import (
	"fmt"

	"repro/internal/bandwidth"
	"repro/internal/emulation"
	"repro/internal/routing"
	"repro/internal/topology"
)

// Dynamic faults: machines that lose wires and processors mid-run. A
// FaultPlan says *when* and *how much* fails ("edges:0.05@t100"); a
// FaultSchedule is the plan materialized against one machine with one rng
// (exactly which wires, which processors). The routing simulator executes
// schedules while packets are in flight, rerouting around the damage and
// dropping what cannot be saved; the measurement and emulation layers turn
// that into degradation curves and slowdown penalties.

// FaultKind enumerates the clause kinds of a FaultPlan.
type FaultKind = topology.FaultKind

// The fault clause kinds: a fraction of live wires fails, a count of live
// processors fails, or everything heals.
const (
	EdgeFaults = topology.EdgeFaults
	NodeFaults = topology.NodeFaults
	Heal       = topology.Heal
)

// FaultClause is one clause of a fault plan: what fails (or heals) at which
// tick.
type FaultClause = topology.FaultClause

// FaultPlan is a machine-independent fault scenario, a tick-ordered list of
// clauses. Materialize turns it into a FaultSchedule for a machine.
type FaultPlan = topology.FaultPlan

// FaultSchedule is a materialized fault plan: concrete wires and processors
// failing (and healing) at concrete ticks on one machine.
type FaultSchedule = topology.FaultSchedule

// FaultEvent is one tick's worth of a FaultSchedule.
type FaultEvent = topology.FaultEvent

// FaultOptions tunes stranded-packet resilience: retry budget, backoff
// base, and TTL. The zero value uses the documented defaults.
type FaultOptions = routing.FaultOptions

// ParseFaultSpec parses a fault scenario like
//
//	"edges:0.05@t100,nodes:8@t500,heal@t900"
//
// into a FaultPlan: at tick 100 each live wire fails with probability 0.05,
// at tick 500 eight live processors fail, at tick 900 everything heals.
func ParseFaultSpec(spec string) (FaultPlan, error) { return topology.ParseFaultSpec(spec) }

// MustParseFaultSpec is ParseFaultSpec panicking on error, for specs fixed
// at compile time.
func MustParseFaultSpec(spec string) FaultPlan { return topology.MustParseFaultSpec(spec) }

// FaultPoint is one sample of a degradation curve: delivery rate before and
// after a wire-fault event, plus the delivered/dropped/retried breakdown.
type FaultPoint = bandwidth.FaultPoint

// MeasureBetaUnderFaults produces a degradation curve for m under symmetric
// traffic: for each fraction, a continuous run near saturation loses that
// share of its wires a third of the way in, and the delivery rate is
// compared across the pre- and post-fault windows.
//
// Deprecated: use Run with a RunFaultCurve spec.
func MeasureBetaUnderFaults(m *Machine, fracs []float64, ticks int, seed int64) []FaultPoint {
	return MeasureBetaUnderFaultsSharded(m, fracs, ticks, 1, seed)
}

// MeasureBetaUnderFaultsSharded is MeasureBetaUnderFaults on a simulator
// sharded across the given number of goroutines (0 or 1 = serial). The
// liveness mask shards with the vertex partition; the curve is
// bit-identical at every shard count.
//
// Deprecated: use Run with a RunFaultCurve spec and Shards set.
func MeasureBetaUnderFaultsSharded(m *Machine, fracs []float64, ticks, shards int, seed int64) []FaultPoint {
	return mustRun(m, RunSpec{Kind: RunFaultCurve, FaultFracs: fracs, Ticks: ticks, Shards: shards, Seed: seed}).FaultCurve
}

// MeasureOpenLoopSnapshotUnderFaults is MeasureOpenLoopSnapshot with a
// fault scenario running mid-measurement: the spec is parsed, materialized
// against m, and executed while traffic flows. Stranded packets retry with
// the default FaultOptions; the snapshot carries the dropped/retried
// counters and the per-tick dropped series.
//
// Deprecated: use Run with a RunOpenLoop spec, Snapshot, and Faults set.
func MeasureOpenLoopSnapshotUnderFaults(m *Machine, rate float64, ticks, topK int, spec string, seed int64) (OpenLoopResult, Snapshot) {
	return MeasureOpenLoopSnapshotUnderFaultsSharded(m, rate, ticks, topK, 1, spec, seed)
}

// MeasureOpenLoopSnapshotUnderFaultsSharded is
// MeasureOpenLoopSnapshotUnderFaults on a simulator sharded across the
// given number of goroutines (0 or 1 = serial); result and snapshot are
// bit-identical at every shard count.
//
// Deprecated: use Run with a RunOpenLoop spec, Snapshot, Faults, and
// Shards set.
func MeasureOpenLoopSnapshotUnderFaultsSharded(m *Machine, rate float64, ticks, topK, shards int, spec string, seed int64) (OpenLoopResult, Snapshot) {
	res := mustRun(m, RunSpec{Kind: RunOpenLoop, Rate: rate, Ticks: ticks, TopK: topK, Snapshot: true, Faults: spec, Shards: shards, Seed: seed})
	return *res.OpenLoop, *res.Snapshot
}

// DegradedEmulation reports an emulation that lost host processors mid-run:
// whole-run totals plus the pre/post slowdown split, the dead-host set, and
// how many guest processors were remapped.
type DegradedEmulation = emulation.DegradedResult

// EmulateDegraded runs the contraction emulation of guest on host, killing
// failCount random host processors after failStep of the steps guest steps.
// The dead hosts' guests are remapped to the nearest surviving host and the
// run continues on the degraded machine; the result reports the slowdown
// penalty the failure cost.
//
// Deprecated: use RunEmulation with a "nodes:K@tS" Faults clause.
func EmulateDegraded(guest, host *Machine, steps, failStep, failCount int, seed int64) DegradedEmulation {
	return *mustRunEmulation(guest, host, RunSpec{
		Kind:   RunEmulate,
		Steps:  steps,
		Faults: fmt.Sprintf("nodes:%d@t%d", failCount, failStep),
		Seed:   seed,
	}).DegradedResult
}
