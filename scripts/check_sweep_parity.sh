#!/bin/sh
# Sweep-parity contract: a POST /v1/sweep response must be byte-for-byte
# the concatenation of the individual POST /v1/measure responses for its
# merged points. Boots a single netemud, runs one multi-point sweep
# (three rates and a second machine size over one mesh family, plus a
# beta sweep), replays every point individually, and diffs.
#
# Usage:  scripts/check_sweep_parity.sh
#
# Environment:
#   PORT  localhost port for the server (default 18099)
set -eu
cd "$(dirname "$0")/.."
port="${PORT:-18099}"

bin="$(mktemp -d)"
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$bin"' EXIT
go build -o "$bin/netemud" ./cmd/netemud

"$bin/netemud" -addr "127.0.0.1:$port" -concurrency 2 &
pids="$pids $!"
for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

base="http://127.0.0.1:$port"
check_sweep() {
    name="$1"; sweep="$2"; shift 2
    curl -sf -X POST -d "$sweep" "$base/v1/sweep" > "$bin/sweep.$name"
    : > "$bin/individual.$name"
    for spec in "$@"; do
        curl -sf -X POST -d "$spec" "$base/v1/measure" >> "$bin/individual.$name"
    done
    diff "$bin/sweep.$name" "$bin/individual.$name"
    echo "sweep parity ok: $name ($# points)"
}

check_sweep open-loop \
    '{"base":{"kind":"open-loop","machine":{"family":"Mesh","dim":2,"size":64},"rate":2,"ticks":80,"seed":5},"points":[{},{"rate":4},{"rate":6},{"machine":{"family":"Mesh","dim":2,"size":144}}]}' \
    '{"kind":"open-loop","machine":{"family":"Mesh","dim":2,"size":64},"rate":2,"ticks":80,"seed":5}' \
    '{"kind":"open-loop","machine":{"family":"Mesh","dim":2,"size":64},"rate":4,"ticks":80,"seed":5}' \
    '{"kind":"open-loop","machine":{"family":"Mesh","dim":2,"size":64},"rate":6,"ticks":80,"seed":5}' \
    '{"kind":"open-loop","machine":{"family":"Mesh","dim":2,"size":144},"rate":2,"ticks":80,"seed":5}'

check_sweep beta \
    '{"base":{"kind":"beta","machine":{"family":"DeBruijn","size":16},"load_factors":[2,4],"trials":1,"seed":3},"points":[{},{"seed":4},{"strategy":"valiant"}]}' \
    '{"kind":"beta","machine":{"family":"DeBruijn","size":16},"load_factors":[2,4],"trials":1,"seed":3}' \
    '{"kind":"beta","machine":{"family":"DeBruijn","size":16},"load_factors":[2,4],"trials":1,"seed":4}' \
    '{"kind":"beta","machine":{"family":"DeBruijn","size":16},"load_factors":[2,4],"trials":1,"strategy":"valiant","seed":3}'
