#!/bin/sh
# Store-query contract: every result the background scheduler lands in
# the -store must come back from GET /v1/results/{key} byte-identical
# to a fresh POST /v1/measure response for the same spec — across any
# number of restarts, the store is a cache of the measurement contract,
# never a fork of it.
#
# Boots netemud with a result store and a one-shot sweep job, waits for
# the scheduler's sweep-done event on /v1/sweeps/stream (the hub
# replays its event log to late subscribers, so short polling reads are
# race-free), then for every stored record diffs the stored body
# against a fresh POST of the record's canonical spec. Finally asserts
# the /metrics conservation law covers the new read endpoints and that
# the store section accounts for exactly the scheduled points.
#
# Usage:  scripts/check_store_query.sh
#
# Environment:
#   PORT  localhost port for the server (default 18098)
set -eu
cd "$(dirname "$0")/.."
port="${PORT:-18098}"
base="http://127.0.0.1:$port"

bin="$(mktemp -d)"
pids=""
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$bin"' EXIT
go build -o "$bin/netemud" ./cmd/netemud

cat > "$bin/sweeps.json" <<'EOF'
[{"name":"ci-oneshot","sweep":{
  "base":{"kind":"lambda","machine":{"family":"Mesh","dim":2,"size":16},"seed":3},
  "points":[{},
            {"machine":{"family":"Mesh","dim":2,"size":36}},
            {"machine":{"family":"Mesh","dim":2,"size":64}}]}}]
EOF

"$bin/netemud" -addr "127.0.0.1:$port" -concurrency 2 \
    -store "$bin/store" -sweeps "$bin/sweeps.json" &
pids="$pids $!"
for _ in $(seq 1 50); do
    curl -sf "$base/healthz" >/dev/null 2>&1 && break
    sleep 0.2
done

done=0
for _ in $(seq 1 60); do
    if curl -sN --max-time 2 "$base/v1/sweeps/stream" 2>/dev/null | grep -q "event: sweep-done"; then
        done=1
        break
    fi
    sleep 0.5
done
[ "$done" = 1 ] || { echo "scheduler never published sweep-done" >&2; exit 1; }
echo "scheduled sweep completed (observed over /v1/sweeps/stream)"

# Every stored record, as "key spec" lines: the canonical string minus
# its runspec/v1/ prefix is compact JSON (no spaces), and POSTing it
# back is exactly the request the store key was derived from.
curl -sf "$base/v1/results?kind=lambda" > "$bin/results.json"
python3 - "$bin/results.json" > "$bin/records.txt" <<'EOF'
import json, sys
page = json.load(open(sys.argv[1]))
if page["count"] != 3:
    raise SystemExit("expected 3 stored results, got %d: %s" % (page["count"], page))
for m in page["results"]:
    prefix = "runspec/v1/"
    if not m["canonical"].startswith(prefix):
        raise SystemExit("unexpected canonical form: %s" % m["canonical"])
    print(m["key"], m["canonical"][len(prefix):])
EOF

n=0
while read -r key spec; do
    curl -sf "$base/v1/results/$key" > "$bin/stored.json"
    curl -sf -X POST -d "$spec" "$base/v1/measure" > "$bin/fresh.json"
    diff "$bin/stored.json" "$bin/fresh.json"
    n=$((n + 1))
done < "$bin/records.txt"
echo "store-query parity ok: $n stored results byte-identical to fresh /v1/measure"

curl -sf "$base/v1/meta" >/dev/null
curl -sf "$base/metrics" > "$bin/metrics.json"
python3 - "$bin/metrics.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
eps = m["endpoints"]
for want in ("/v1/measure", "/v1/results", "/v1/meta"):
    if want not in eps:
        raise SystemExit("endpoint %s missing from /metrics: %s" % (want, sorted(eps)))
total = sum(ep["requests"] for ep in eps.values())
statuses = sum(n for ep in eps.values() for n in ep["by_status"].values())
if not (total == statuses == m["requests"]):
    raise SystemExit("conservation broken: requests=%d endpoints=%d statuses=%d"
                     % (m["requests"], total, statuses))
st = m["store"]
if st["records"] != 3 or st["append_errors"] != 0:
    raise SystemExit("store section off: %s" % st)
if m["scheduled_points"] != 3 or m["scheduled_errors"] != 0:
    raise SystemExit("scheduler counters off: points=%d errors=%d"
                     % (m["scheduled_points"], m["scheduled_errors"]))
EOF
echo "metrics conservation holds across the read endpoints (store records=3, scheduled points=3)"
