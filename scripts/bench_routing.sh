#!/bin/sh
# Benchmark the routing hot path (serial and sharded Step, open loop,
# batch route) plus the amortized-execution layer (cold vs warm Execute
# over the artifact cache) and record the results as BENCH_routing.json
# at the repo root. The JSON keeps the benchmark trajectory diffable
# across PRs and is uploaded as a CI artifact.
#
# Usage:  scripts/bench_routing.sh [output.json]
#
# Environment:
#   COUNT      repetitions per benchmark, averaged into one row (default 3)
#   BENCHTIME  go test -benchtime value (default 10x; the sharded Step on
#              the dim-16 hypercube costs tens of ms per op)
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_routing.json}"
count="${COUNT:-3}"
benchtime="${BENCHTIME:-10x}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test ./internal/routing/ -run '^$' -bench 'BenchmarkSim' \
    -benchmem -benchtime "$benchtime" -count "$count" | tee "$raw"
go test ./internal/runspec/ -run '^$' -bench 'BenchmarkExecuteColdVsWarm' \
    -benchmem -benchtime "$benchtime" -count "$count" | tee -a "$raw"
go run ./cmd/benchjson < "$raw" > "$out"
echo "wrote $out"
