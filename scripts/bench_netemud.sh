#!/bin/sh
# Boot a local netemud cluster (coordinator + 2 workers), replay a
# seeded netemuload plan against it, and record latency/throughput as
# BENCH_netemud.json at the repo root. The coordinator runs with a
# result store and the plan mixes in GET /v1/results and GET /v1/meta
# reads, so the report covers the store's read path too. With
# DIFF_SINGLE=1 the same plan also replays against a single-node
# netemud and the saved response bodies are diffed file-by-file — the
# cluster-parity contract: a coordinator's responses must be
# byte-identical to a single node's. Read and meta responses are
# excluded from that diff (read bodies race write timing; /v1/meta
# reports the deployment role), which is why netemuload saves them
# under distinct read-*/meta-* names.
#
# Usage:  scripts/bench_netemud.sh [output.json]
#
# Environment:
#   REQUESTS     plan length (default 120)
#   CONCURRENCY  replay workers (default 4)
#   SEED         plan seed (default 1)
#   BASE_PORT    first of three consecutive localhost ports (default 18090)
#   DIFF_SINGLE  1 = also replay against a single node and diff responses
#   SWEEP_OUT    where to record the /v1/sweep endpoint benchmark
#                (default BENCH_sweep.json; empty string skips it)
set -eu
cd "$(dirname "$0")/.."
out="${1:-BENCH_netemud.json}"
requests="${REQUESTS:-120}"
concurrency="${CONCURRENCY:-4}"
seed="${SEED:-1}"
base="${BASE_PORT:-18090}"
w1=$((base)); w2=$((base + 1)); coord=$((base + 2)); single=$((base + 3))

# Track daemon PIDs by hand: `jobs -p` inside the trap's command
# substitution runs in a subshell with an empty job table, which would
# leave the daemons alive holding stdout (and hang a piped caller).
pids=""
bin="$(mktemp -d)"
trap 'for p in $pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$bin"' EXIT
go build -o "$bin/netemud" ./cmd/netemud
go build -o "$bin/netemuload" ./cmd/netemuload

wait_healthy() {
    for _ in $(seq 1 50); do
        curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
        sleep 0.2
    done
    echo "port $1 never became healthy" >&2
    return 1
}

"$bin/netemud" -addr "127.0.0.1:$w1" -worker &
pids="$pids $!"
"$bin/netemud" -addr "127.0.0.1:$w2" -worker &
pids="$pids $!"
wait_healthy "$w1"
wait_healthy "$w2"
"$bin/netemud" -addr "127.0.0.1:$coord" \
    -coordinator -workers "127.0.0.1:$w1,127.0.0.1:$w2" \
    -health-interval 500ms -store "$bin/store-cluster" &
pids="$pids $!"
wait_healthy "$coord"

resp_cluster="$(mktemp -d)"
"$bin/netemuload" -target "http://127.0.0.1:$coord" \
    -requests "$requests" -concurrency "$concurrency" -seed "$seed" -reads \
    -responses "$resp_cluster" -fail-on-error -o "$out"
echo "wrote $out"

if [ "${DIFF_SINGLE:-0}" = "1" ]; then
    "$bin/netemud" -addr "127.0.0.1:$single" -store "$bin/store-single" &
    pids="$pids $!"
    wait_healthy "$single"
    resp_single="$(mktemp -d)"
    "$bin/netemuload" -target "http://127.0.0.1:$single" \
        -requests "$requests" -concurrency "$concurrency" -seed "$seed" -reads \
        -responses "$resp_single" -fail-on-error -o /dev/null
    diff -r -x 'read-*' -x 'meta-*' "$resp_cluster" "$resp_single"
    echo "cluster responses byte-identical to single-node ($requests requests)"
    rm -rf "$resp_single"
fi
rm -rf "$resp_cluster"

sweep_out="${SWEEP_OUT-BENCH_sweep.json}"
if [ -n "$sweep_out" ]; then
    raw="$(mktemp)"
    go test ./internal/server/ -run '^$' -bench 'BenchmarkSweepEndpoint' \
        -benchmem -benchtime "${BENCHTIME:-10x}" -count "${COUNT:-3}" | tee "$raw"
    go run ./cmd/benchjson < "$raw" > "$sweep_out"
    rm -f "$raw"
    echo "wrote $sweep_out"
fi
